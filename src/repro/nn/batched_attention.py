"""Packed batched attention backend for the serving decode hot path.

The looped decode path issues ``B × n_layers`` separate single-row
``run_layer`` calls per mixed step — dozens of tiny NumPy ops per
sequence per layer, which leaves the interpreter, not BLAS, as the
bottleneck (PAPER.md §IV's accelerator wins precisely because it feeds
wide batched Q·K·V units).  :class:`PackedDecodeBackend` restructures
one decode step so that everything that *can* run as a single
batch-level BLAS call does:

* **fused Q/K/V projection** — one ``[B, 1, d] @ [d, 3d]`` matmul per
  layer replaces ``3B`` single-row GEMMs;
* **central dense attention core** — scores, the length-masked softmax,
  and A·V run over zero-copy views of each sequence's preallocated KV
  buffers (:class:`~repro.nn.kv_cache.LayerKVCache`), with the
  elementwise softmax stages (max, shift, exp, normalize) batched
  across sequences in a reusable padded scratch tensor;
* **fused output FC** — one ``[B, 1, h·D] @ [d, d]`` matmul replaces
  ``B`` per-sequence projections;
* **fused chunk projection** — during chunked prefill, the Q/K/V
  projections of every in-flight prompt's chunk run as one GEMM over
  the concatenated rows.

Bit-identity contract
---------------------

The packed path must produce logits **bit-identical** to the looped
oracle (``tests/test_packed_decode.py`` enforces this property across
executors, ragged lengths, pruned-head sets, and mid-generation
evictions).  That constraint dictates the design, because BLAS
reductions are not grouping-invariant:

* multi-slice ``np.matmul`` (the gufunc) computes each 2-D slice with
  the same kernel as a standalone single-row matmul, so batching the
  projections is exact — but a *2-D* ``[B, d] @ [d, d]`` GEMM is not
  (single-row products take a GEMV-shaped path whose accumulation
  differs in the last ulp);
* fusing Q/K/V into one ``[d, 3d]`` weight is exact (output columns are
  independent), and concatenating chunk rows is exact for blocks of
  ≥ 2 rows (row blocks of a GEMM are independent) — single-row chunks
  are projected solo;
* zero-padding the *reduction* axis is **not** exact on OpenBLAS (the
  k-loop blocking changes with length), so scores and A·V run per
  sequence at exact lengths over zero-copy cache views, never over a
  padded pack;
* ``max`` is order-exact, and exp/shift/normalize are elementwise, so
  those softmax stages batch across the padded scratch; the softmax
  *denominator* (a length-sensitive pairwise sum) reduces per sequence
  over exact-length views.

Executors opt in through
:attr:`~repro.nn.transformer.AttentionExecutor.packed_decode_style`:
dense caches run the central core above; SpAtten executors run their
own per-sequence core (cascade pruning decisions, progressive
quantization, trace accounting) on backend-supplied projections, with
per-sequence surviving-head sets honored by gathering live-head slices
from the full-width rows; anything else falls back to ``run_layer``
with unchanged semantics.

Numerics-policy fast path
-------------------------

Under a non-exact :class:`~repro.nn.numerics.NumericsPolicy` the
bit-identity constraint is *traded away* for a declared accuracy
budget, which unlocks the padded-pack design the contract above
forbids.  :meth:`PackedDecodeBackend.decode_step_policy` then runs the
whole decode step in the policy's compute dtype (fp32):

* every dense sequence's K/V live in a persistent per-layer **arena**
  — ``[S, h, cap, D]`` fp32 planes in batch-row order — so the score
  and A·V stages run as *one* batched ``[B, h, 1, max_len]`` gufunc
  matmul each, with a masked softmax batched over the padded scratch
  (padding columns are masked to ``-1e30`` and underflow to exact 0);
* arena rows sync incrementally: an unchanged
  :attr:`~repro.nn.kv_cache.LayerKVCache.version` plus one new column
  means an O(h·D) tail write; eviction, preemption, or batch-order
  churn trigger an O(L) rebuild from the cache (dequantizing int8
  codes through their per-row scales);
* LayerNorm, the tanh/gelu FFN, and the LM head run vectorized in
  fp32 over weight copies cast once at backend construction;
* the ``int8`` tier additionally rounds the decode-step Q rows through
  the int8 grid (:func:`repro.core.quantization.quantize_rows`), so
  score GEMMs see int8-quantized operands with fp32 accumulation, and
  quantizes each step's *batch* of new K/V columns in one call before
  handing each cache its pre-quantized slice.

The ``exact`` policy never touches any of this: every pre-existing
code path runs verbatim and stays bit-identical to the looped oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .attention import split_heads
from .numerics import resolve_numerics
from .transformer import AttentionExecutor, TransformerModel

__all__ = ["PackedDecodeBackend", "ATTENTION_BACKENDS"]

#: Selectable attention backends for the serving decode path.
ATTENTION_BACKENDS = ("looped", "packed")

#: Sentinel score for padding columns; matches the masking convention of
#: :func:`repro.nn.attention.scaled_dot_attention` and underflows to an
#: exact 0.0 after the softmax's exp.
_MASKED = -1e30

#: tanh-approximation gelu constant (Python float: binary ops against
#: it preserve the array's compute dtype instead of promoting to fp64).
_GELU_C = float(np.sqrt(2.0 / np.pi))


def _policy_layer_norm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray
) -> np.ndarray:
    """LayerNorm staying in the array's compute dtype.

    Same math as :func:`repro.nn.functional.layer_norm` (eps 1e-5);
    kept separate so the exact path's fp64 oracle normalization is
    untouched while the policy path avoids fp64 promotion.  Reductions
    go through ``np.add.reduce`` + an inverse-width multiply instead of
    ``np.mean`` — the raw ufunc skips ``np.mean``'s dispatch/dtype
    bookkeeping (~2× on decode-step-sized rows, and this runs twice per
    layer on the hot path; exact for power-of-two widths, within one
    ulp otherwise — inside every tier's declared budget).
    """
    inv_d = 1.0 / x.shape[-1]
    mean = np.add.reduce(x, axis=-1, keepdims=True)
    mean *= inv_d
    centered = x - mean
    var = np.multiply(centered, centered)
    var = np.add.reduce(var, axis=-1, keepdims=True)
    var *= inv_d
    var += 1e-5
    np.sqrt(var, out=var)
    centered /= var
    centered *= gamma
    centered += beta
    return centered


class _PolicyWeights:
    """Model weights cast once into a policy's compute dtype.

    Holding the cast copies on the backend makes every policy decode
    step allocation-free on the weight side; the fp64 originals stay
    untouched for the exact paths (prefill projections included).
    """

    __slots__ = (
        "tok_emb", "pos_emb", "lm_proj", "wqkv", "bqkv", "wo", "bo",
        "ln1_g", "ln1_b", "ln2_g", "ln2_b", "w1", "b1", "w2", "b2",
    )

    def __init__(self, model, wqkv, bqkv, compute_dtype):
        ct = compute_dtype
        params = model.params
        self.tok_emb = params.token_embedding.astype(ct)
        self.pos_emb = params.pos_embedding.astype(ct)
        self.lm_proj = np.ascontiguousarray(params.lm_projection()).astype(ct)
        self.wqkv = [w.astype(ct) for w in wqkv]
        self.bqkv = [b.astype(ct) for b in bqkv]
        self.wo, self.bo = [], []
        self.ln1_g, self.ln1_b, self.ln2_g, self.ln2_b = [], [], [], []
        self.w1, self.b1, self.w2, self.b2 = [], [], [], []
        for layer_idx in range(model.config.n_layers):
            bp = model.block(layer_idx)
            aw = model.attention(layer_idx).weights
            self.wo.append(aw.wo.astype(ct))
            self.bo.append(aw.bo.astype(ct))
            self.ln1_g.append(bp.ln1_gamma.astype(ct))
            self.ln1_b.append(bp.ln1_beta.astype(ct))
            self.ln2_g.append(bp.ln2_gamma.astype(ct))
            self.ln2_b.append(bp.ln2_beta.astype(ct))
            self.w1.append(bp.ffn_w1.astype(ct))
            self.b1.append(bp.ffn_b1.astype(ct))
            self.w2.append(bp.ffn_w2.astype(ct))
            self.b2.append(bp.ffn_b2.astype(ct))


class _ArenaPlane:
    """One layer's persistent padded KV arena (policy fast path).

    ``k`` is a ``[S, h, D, cap]`` and ``v`` a ``[S, h, cap, D]``
    compute-dtype plane holding the dequantized KV columns of up to
    ``S`` sequences in *batch-row order* (K is stored pre-transposed so
    the score GEMM needs no strided transpose view);
    ``owners[j]`` is the :class:`~repro.nn.kv_cache.LayerKVCache`
    whose columns currently fill row ``j`` (identity-checked every
    step, so stale or deep-copied caches can never alias a row).
    Rows are rebuilt from cache truth whenever ownership, content
    version, or batch order changes; growth reallocates the plane and
    clears ownership, forcing a one-step rebuild of every row.
    """

    __slots__ = ("k", "v", "owners")

    def __init__(self, k: np.ndarray, v: np.ndarray):
        self.k = k
        self.v = v
        self.owners: List[Optional[object]] = [None] * k.shape[0]


class PackedDecodeBackend:
    """Batched attention executor state shared across decode steps.

    One backend instance serves one model; the serving engine creates it
    once and passes it to every
    :meth:`~repro.nn.transformer.TransformerModel.decode_step_batch` /
    :meth:`~repro.nn.transformer.TransformerModel.prefill_chunk_batch`
    call.  The backend holds the fused per-layer projection weights and
    reusable scratch tensors (scores, denominators, head outputs), which
    grow page-aligned with the live batch instead of being rebuilt every
    step.
    """

    def __init__(
        self,
        model: TransformerModel,
        scratch_page_tokens: int = 64,
        numerics=None,
    ):
        if scratch_page_tokens < 1:
            raise ValueError("scratch_page_tokens must be >= 1")
        self._model = model
        self._scratch_page = scratch_page_tokens
        #: The numerics ladder tier this backend runs decode steps at;
        #: ``exact`` (the default) leaves every code path bit-identical.
        self.policy = resolve_numerics(numerics)
        cfg = model.config
        d = cfg.d_model
        # Fused [d, 3d] QKV weights: output column blocks of a GEMM are
        # independent, so (x @ wqkv)[:, :d] is bit-identical to x @ wq.
        self._wqkv: List[np.ndarray] = []
        self._bqkv: List[np.ndarray] = []
        for layer_idx in range(cfg.n_layers):
            w = model.attention(layer_idx).weights
            self._wqkv.append(np.concatenate([w.wq, w.wk, w.wv], axis=1))
            self._bqkv.append(np.concatenate([w.bq, w.bk, w.bv]))
        # Reusable scratch, grown on demand.
        self._scores = np.zeros((0, cfg.n_heads, 1, 0))
        self._denom = np.zeros((0, cfg.n_heads, 1, 1))
        self._head_out = np.zeros((0, cfg.n_heads, 1, cfg.head_dim))
        self._merged = np.zeros((0, 1, d))
        # Policy fast-path state (unused — and unallocated — for exact).
        self._cast: Optional[_PolicyWeights] = None
        self._planes: List[Optional[_ArenaPlane]] = []
        self._p_scores = None
        self._p_merged = None
        if not self.policy.is_exact:
            ct = self.policy.compute_dtype
            self._cast = _PolicyWeights(model, self._wqkv, self._bqkv, ct)
            self._planes = [None] * cfg.n_layers
            self._p_scores = np.zeros((0, cfg.n_heads, 1, 0), dtype=ct)
            self._p_merged = np.zeros((0, 1, d), dtype=ct)
            self._p_qpack = np.zeros((0, cfg.n_heads, 1, cfg.head_dim), dtype=ct)
            self._p_kvrows = np.zeros((0, cfg.n_heads, cfg.head_dim), dtype=ct)
            self._p_qcodes_f = np.zeros((0, cfg.n_heads, cfg.head_dim), dtype=ct)
            self._p_qscales = np.zeros((0, cfg.n_heads, 1), dtype=np.float32)
            self._p_qcodes = np.zeros((0, cfg.n_heads, cfg.head_dim), dtype=np.int8)
            d_ff = self._cast.w1[0].shape[1]
            self._p_ffn_h = np.zeros((0, d_ff), dtype=ct)
            self._p_ffn_i = np.zeros((0, d_ff), dtype=ct)
            self._inv_sqrt_d = 1.0 / float(np.sqrt(cfg.head_dim))
        #: Optional :class:`repro.telemetry.HotPathProfiler` measuring
        #: real wall-clock time per stage (the serving engine attaches
        #: it when profiling is requested).  ``None`` costs one ``is
        #: None`` check per stage — the hot path stays unchanged.
        self.profiler = None

    # ------------------------------------------------------------------
    # Scratch management
    # ------------------------------------------------------------------
    def _scores_scratch(self, n: int, max_len: int) -> np.ndarray:
        h = self._model.config.n_heads
        if self._scores.shape[0] < n or self._scores.shape[3] < max_len:
            pages = -(-max_len // self._scratch_page)
            cap = max(pages * self._scratch_page, self._scores.shape[3])
            self._scores = np.zeros((max(n, self._scores.shape[0]), h, 1, cap))
        return self._scores[:n, :, :, :max_len]

    def _batch_scratch(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        cfg = self._model.config
        if self._denom.shape[0] < n:
            self._denom = np.zeros((n, cfg.n_heads, 1, 1))
            self._head_out = np.zeros((n, cfg.n_heads, 1, cfg.head_dim))
        return self._denom[:n], self._head_out[:n]

    def _merged_scratch(self, batch: int) -> np.ndarray:
        d = self._model.config.d_model
        if self._merged.shape[0] < batch:
            self._merged = np.zeros((batch, 1, d))
        return self._merged[:batch]

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def decode_layer(
        self,
        model: TransformerModel,
        layer_idx: int,
        x: np.ndarray,
        positions: np.ndarray,
        executors: Sequence[AttentionExecutor],
    ) -> np.ndarray:
        """Packed attention of one block over a decode batch.

        Returns ``attn_out [B, d_model]``, bit-identical to
        concatenating the looped per-sequence ``run_layer`` outputs.
        """
        if model is not self._model:
            raise ValueError(
                "PackedDecodeBackend is bound to a different model; create "
                "one backend per TransformerModel"
            )
        cfg = model.config
        d, n_heads, head_dim = cfg.d_model, cfg.n_heads, cfg.head_dim
        batch = len(executors)

        # Fused batched QKV projection.  The gufunc computes each [1, d]
        # slice with the single-row kernel, so row i is bit-identical to
        # the looped path's x[i:i+1] @ w projections.
        prof = self.profiler
        t0 = prof.start() if prof is not None else 0.0
        qkv = np.matmul(x[:, None, :], self._wqkv[layer_idx])
        qkv += self._bqkv[layer_idx]
        if prof is not None:
            prof.stop("decode_qkv_proj", t0)

        merged = self._merged_scratch(batch)
        dense_rows: List[Tuple[int, np.ndarray, object]] = []
        fallback_rows: List[int] = []
        for i, executor in enumerate(executors):
            row = qkv[i]  # [1, 3d]
            style = executor.packed_decode_style
            if style == "none":
                # Fallback rows ride through the batched GEMMs and are
                # overwritten below; opt-out executors are rare enough
                # that the wasted rows cost less than gathering the
                # batch around them.
                fallback_rows.append(i)
                continue
            q = split_heads(row[:, :d], n_heads)
            k_new = split_heads(row[:, d : 2 * d], n_heads)
            v_new = split_heads(row[:, 2 * d :], n_heads)
            if style == "dense":
                cache = executor.decode_kv_append(
                    layer_idx, k_new, v_new, positions[i : i + 1]
                )
                dense_rows.append((i, q, cache))
            elif style == "custom":
                t0 = prof.start() if prof is not None else 0.0
                merged[i] = executor.decode_attend_packed(
                    layer_idx, model, q, k_new, v_new, positions[i : i + 1]
                )
                if prof is not None:
                    prof.stop("decode_custom_core", t0)
            else:
                raise ValueError(
                    f"unknown packed_decode_style {style!r} from "
                    f"{type(executor).__name__}"
                )
        if dense_rows:
            t0 = prof.start() if prof is not None else 0.0
            self._dense_core(dense_rows, merged, head_dim)
            if prof is not None:
                prof.stop("decode_dense_core", t0)

        # Fused batched output FC over every packed sequence's merged
        # head features (row blocks are independent, so each row equals
        # the looped [1, h*D] @ wo product).
        t0 = prof.start() if prof is not None else 0.0
        weights = model.attention(layer_idx).weights
        out = np.matmul(merged, weights.wo)
        out += weights.bo
        attn_out = out[:, 0, :]
        if prof is not None:
            prof.stop("decode_output_fc", t0)
        for i in fallback_rows:
            t0 = prof.start() if prof is not None else 0.0
            attn_out[i] = executors[i].run_layer(
                layer_idx, model, x[i : i + 1], positions[i : i + 1], "decode"
            ).output[0]
            if prof is not None:
                prof.stop("decode_fallback", t0)
        return attn_out

    def _dense_core(
        self,
        dense_rows: List[Tuple[int, np.ndarray, object]],
        merged: np.ndarray,
        head_dim: int,
    ) -> None:
        """Attention core for the cache-only (dense) sequences.

        Scores and A·V run per sequence at exact lengths over zero-copy
        cache views (BLAS reductions are not padding-invariant); the
        elementwise softmax stages batch across the padded scratch.
        """
        lens = [len(cache) for (_, _, cache) in dense_rows]
        n, max_len, min_len = len(dense_rows), max(lens), min(lens)
        scores = self._scores_scratch(n, max_len)
        if min_len < max_len:
            # Mask the ragged tail once for the whole batch; each
            # sequence's real columns are then overwritten in place by
            # its exact-length scores below.
            scores[:, :, :, min_len:] = _MASKED
        for j, (_, q, cache) in enumerate(dense_rows):
            np.matmul(
                q, cache.keys.transpose(0, 2, 1), out=scores[j, :, :, : lens[j]]
            )
        scores /= np.sqrt(head_dim)
        # max is order-exact and shift/exp/normalize are elementwise, so
        # they batch; the denominator's pairwise sum is length-sensitive
        # and reduces per sequence over the exact live width.
        shift = scores.max(axis=-1, keepdims=True)
        scores -= shift
        np.exp(scores, out=scores)
        denom, head_out = self._batch_scratch(n)
        for j in range(n):
            np.sum(
                scores[j, :, :, : lens[j]], axis=-1, keepdims=True,
                out=denom[j],
            )
        scores /= denom
        for j, (_, _, cache) in enumerate(dense_rows):
            np.matmul(scores[j, :, :, : lens[j]], cache.values, out=head_out[j])
        rows = [i for (i, _, _) in dense_rows]
        merged[rows] = head_out.transpose(0, 2, 1, 3).reshape(n, 1, -1)

    # ------------------------------------------------------------------
    # Numerics-policy fast path (fp32 / int8 tiers)
    # ------------------------------------------------------------------
    def _policy_scores(self, n: int, max_len: int) -> np.ndarray:
        h = self._model.config.n_heads
        if self._p_scores.shape[0] < n or self._p_scores.shape[3] < max_len:
            pages = -(-max_len // self._scratch_page)
            cap = max(pages * self._scratch_page, self._p_scores.shape[3])
            self._p_scores = np.zeros(
                (max(n, self._p_scores.shape[0]), h, 1, cap),
                dtype=self.policy.compute_dtype,
            )
        return self._p_scores[:n, :, :, :max_len]

    def _policy_merged(self, batch: int) -> np.ndarray:
        d = self._model.config.d_model
        if self._p_merged.shape[0] < batch:
            self._p_merged = np.zeros(
                (batch, 1, d), dtype=self.policy.compute_dtype
            )
        return self._p_merged[:batch]

    def _policy_qpack(self, n: int) -> np.ndarray:
        """Persistent ``[n, h, 1, D]`` scratch for the scaled Q pack."""
        cfg = self._model.config
        if self._p_qpack.shape[0] < n:
            self._p_qpack = np.empty(
                (n, cfg.n_heads, 1, cfg.head_dim),
                dtype=self.policy.compute_dtype,
            )
        return self._p_qpack[:n]

    def _policy_kv_stage(self, n: int) -> np.ndarray:
        """Persistent ``[2n, h, D]`` staging rows for the fused KV quantize."""
        cfg = self._model.config
        if self._p_kvrows.shape[0] < 2 * n:
            self._p_kvrows = np.empty(
                (2 * n, cfg.n_heads, cfg.head_dim),
                dtype=self.policy.compute_dtype,
            )
        return self._p_kvrows[: 2 * n]

    def _policy_quant_work(self, n: int):
        """Persistent int8-tier scratch: float codes, scales, int8 codes.

        Shapes ``[2n, h, D]`` / ``[2n, h, 1]`` / ``[2n, h, D]``; the
        caches copy out of these on append, so one set of buffers
        serves every layer of every step allocation-free.
        """
        cfg = self._model.config
        if self._p_qcodes_f.shape[0] < 2 * n:
            shape = (2 * n, cfg.n_heads, cfg.head_dim)
            ct = self.policy.compute_dtype
            self._p_qcodes_f = np.empty(shape, dtype=ct)
            self._p_qscales = np.empty(
                (2 * n, cfg.n_heads, 1), dtype=np.float32
            )
            self._p_qcodes = np.empty(shape, dtype=np.int8)
        m = 2 * n
        return (
            self._p_qcodes_f[:m], self._p_qscales[:m], self._p_qcodes[:m]
        )

    def _plane(self, layer_idx: int, n_rows: int, cap_needed: int) -> _ArenaPlane:
        """The layer's arena, grown (rows and columns) to fit this step.

        Growth reallocates and clears ownership — every row rebuilds
        from its cache next sync, so stale plane content can never leak.
        """
        cfg = self._model.config
        plane = self._planes[layer_idx]
        if (
            plane is None
            or plane.k.shape[0] < n_rows
            or plane.k.shape[3] < cap_needed
        ):
            old_rows = plane.k.shape[0] if plane is not None else 0
            old_cap = plane.k.shape[3] if plane is not None else 0
            rows = max(n_rows, old_rows)
            pages = -(-cap_needed // self._scratch_page)
            cap = max(pages * self._scratch_page, 2 * old_cap)
            ct = self.policy.compute_dtype
            plane = _ArenaPlane(
                np.zeros((rows, cfg.n_heads, cfg.head_dim, cap), dtype=ct),
                np.zeros((rows, cfg.n_heads, cap, cfg.head_dim), dtype=ct),
            )
            self._planes[layer_idx] = plane
        return plane

    def decode_step_policy(
        self,
        model: TransformerModel,
        token_ids: np.ndarray,
        positions: np.ndarray,
        executors: Sequence[AttentionExecutor],
    ) -> np.ndarray:
        """One whole decode step in the policy's compute dtype.

        :meth:`~repro.nn.transformer.TransformerModel.decode_step_batch`
        delegates here (after its input validation) whenever the
        backend's policy is non-exact.  The layer stack mirrors the
        exact path operation-for-operation — embedding gather, packed
        attention, residual + LayerNorm, tanh/gelu FFN, LM head — but
        runs vectorized over cast weights with the arena-packed
        attention core of :meth:`_dense_core_policy`.  Rows whose
        executor opts out of packing (``packed_decode_style == "none"``)
        fall back to ``run_layer`` in fp64; ``custom`` executors
        (SpAtten) keep their own per-sequence core and semantics, with
        dtype-aware KV storage underneath.
        """
        if model is not self._model:
            raise ValueError(
                "PackedDecodeBackend is bound to a different model; create "
                "one backend per TransformerModel"
            )
        cw = self._cast
        # Executor styles cannot change mid-step: group rows once and
        # reuse the grouping across every layer.
        dense_rows: List[Tuple[int, AttentionExecutor]] = []
        custom_rows: List[Tuple[int, AttentionExecutor]] = []
        fallback_rows: List[Tuple[int, AttentionExecutor]] = []
        for i, executor in enumerate(executors):
            style = executor.packed_decode_style
            if style == "dense":
                dense_rows.append((i, executor))
            elif style == "custom":
                custom_rows.append((i, executor))
            elif style == "none":
                fallback_rows.append((i, executor))
            else:
                raise ValueError(
                    f"unknown packed_decode_style {style!r} from "
                    f"{type(executor).__name__}"
                )
        dense_idx = [i for i, _ in dense_rows]
        x = cw.tok_emb[token_ids] + cw.pos_emb[positions]
        for layer_idx in range(model.config.n_layers):
            attn_out = self._decode_layer_policy(
                model, layer_idx, x, positions,
                dense_rows, dense_idx, custom_rows, fallback_rows,
            )
            # Residual adds run in place on the freshly produced left
            # operand (attn/FFN output buffers are never aliased to x).
            attn_out += x
            x = _policy_layer_norm(
                attn_out, cw.ln1_g[layer_idx], cw.ln1_b[layer_idx]
            )
            ffn_out = self._ffn_policy(layer_idx, x)
            ffn_out += x
            x = _policy_layer_norm(
                ffn_out, cw.ln2_g[layer_idx], cw.ln2_b[layer_idx],
            )
        return x @ cw.lm_proj

    def _ffn_policy(self, layer_idx: int, x: np.ndarray) -> np.ndarray:
        """Vectorized compute-dtype tanh/gelu FFN (the PR-3 fp64 tax)."""
        cw = self._cast
        if self._p_ffn_h.shape[0] < len(x):
            d_ff = cw.w1[0].shape[1]
            ct = self.policy.compute_dtype
            self._p_ffn_h = np.empty((len(x), d_ff), dtype=ct)
            self._p_ffn_i = np.empty((len(x), d_ff), dtype=ct)
        hidden = self._p_ffn_h[: len(x)]
        inner = self._p_ffn_i[: len(x)]
        np.matmul(x, cw.w1[layer_idx], out=hidden)
        hidden += cw.b1[layer_idx]
        # h + 0.044715 h^3 factored as h (1 + 0.044715 h^2): one fewer
        # full-array multiply, every op in-place on the scratch.
        np.square(hidden, out=inner)
        inner *= 0.044715
        inner += 1.0
        inner *= hidden
        inner *= _GELU_C
        np.tanh(inner, out=inner)
        inner += 1.0
        inner *= hidden
        inner *= 0.5
        out = inner @ cw.w2[layer_idx]
        out += cw.b2[layer_idx]
        return out

    def _decode_layer_policy(
        self,
        model: TransformerModel,
        layer_idx: int,
        x: np.ndarray,
        positions: np.ndarray,
        dense_rows: List[Tuple[int, AttentionExecutor]],
        dense_idx: List[int],
        custom_rows: List[Tuple[int, AttentionExecutor]],
        fallback_rows: List[Tuple[int, AttentionExecutor]],
    ) -> np.ndarray:
        cfg = model.config
        d, n_heads, head_dim = cfg.d_model, cfg.n_heads, cfg.head_dim
        batch = len(x)
        prof = self.profiler
        t0 = prof.start() if prof is not None else 0.0
        cw = self._cast
        # One 2D GEMM (not a [B, 1, d] batched matmul, which dispatches
        # B separate GEMVs) for the fused QKV projection.
        flat = x @ cw.wqkv[layer_idx]
        flat += cw.bqkv[layer_idx]
        # Batched head split: views, replacing 3·B per-row reshapes.
        q_all = flat[:, :d].reshape(batch, n_heads, head_dim)
        k_all = flat[:, d : 2 * d].reshape(batch, n_heads, head_dim)
        v_all = flat[:, 2 * d :].reshape(batch, n_heads, head_dim)
        if prof is not None:
            prof.stop("decode_qkv_proj", t0)

        merged = self._policy_merged(batch)
        for i, executor in custom_rows:
            t0 = prof.start() if prof is not None else 0.0
            merged[i] = executor.decode_attend_packed(
                layer_idx, model,
                q_all[i][:, None, :], k_all[i][:, None, :],
                v_all[i][:, None, :], positions[i : i + 1],
            )
            if prof is not None:
                prof.stop("decode_custom_core", t0)
        if dense_rows:
            t0 = prof.start() if prof is not None else 0.0
            self._dense_core_policy(
                layer_idx, dense_rows, dense_idx, q_all, k_all, v_all,
                positions, merged,
            )
            if prof is not None:
                prof.stop("decode_dense_core", t0)

        t0 = prof.start() if prof is not None else 0.0
        attn_out = merged[:, 0, :] @ cw.wo[layer_idx]
        attn_out += cw.bo[layer_idx]
        if prof is not None:
            prof.stop("decode_output_fc", t0)
        for i, executor in fallback_rows:
            t0 = prof.start() if prof is not None else 0.0
            attn_out[i] = executor.run_layer(
                layer_idx, model,
                # repro: allow[det-dtype-literal] -- fallback rows run the
                # per-sequence fp64 oracle regardless of the policy tier
                np.asarray(x[i : i + 1], dtype=np.float64),
                positions[i : i + 1], "decode",
            ).output[0]
            if prof is not None:
                prof.stop("decode_fallback", t0)
        return attn_out

    def _dense_core_policy(
        self,
        layer_idx: int,
        dense_rows: List[Tuple[int, AttentionExecutor]],
        dense_idx: List[int],
        q_all: np.ndarray,
        k_all: np.ndarray,
        v_all: np.ndarray,
        positions: np.ndarray,
        merged: np.ndarray,
    ) -> None:
        """Arena-packed attention core for the dense rows of one layer.

        Appends this step's KV columns (the whole batch's k/v rows
        quantized in *one* :func:`quantize_rows` call under int8),
        syncs each cache into its batch-order arena row (a single
        vectorized fancy-index tail write in the steady state), then
        runs scores → masked softmax → A·V as three batched tensor ops
        over the ``[n, h, ...]`` pack — no per-sequence BLAS calls.
        """
        ct = self.policy.compute_dtype
        n = len(dense_rows)
        # All-dense batches (the common serving case) index with plain
        # slices — views, not fancy-index copies.
        sel = slice(None) if n == merged.shape[0] else dense_idx
        quantized = self.policy.quantized_gemm
        if quantized:
            # One fused quantization of this step's k and v rows —
            # inlined :func:`repro.core.quantization.quantize_rows`
            # (bit-identical codes and scales, asserted by
            # tests/test_numerics.py) over persistent scratch: every op
            # runs in place, and the finite-input guard is skipped
            # because decode activations are bounded by construction
            # (LayerNormed hidden state through finite weights).  Q
            # stays in the compute dtype — the score GEMM reads fp Q
            # against dequantized int8 K, matching what the cache
            # stores.
            kv_rows = self._policy_kv_stage(n)
            kv_rows[:n] = k_all[sel]
            kv_rows[n:] = v_all[sel]
            codes_f, scales, codes = self._policy_quant_work(n)
            np.abs(kv_rows, out=codes_f)
            np.fmax.reduce(codes_f, axis=-1, keepdims=True, out=scales)
            np.divide(scales, 127.0, out=scales)
            scales[scales == 0.0] = 1.0
            np.divide(kv_rows, scales, out=codes_f)
            np.rint(codes_f, out=codes_f)
            np.clip(codes_f, -127.0, 127.0, out=codes_f)
            # codes_f holds exact integers in [-127, 127] after the
            # rint+clip, so the int8 assignment cast is value-exact.
            codes[...] = codes_f
            # Dequantize in place over the staging rows: these are the
            # arena columns (what the score GEMM reads back).
            np.multiply(codes_f, scales, out=kv_rows)
            k_cols = kv_rows[:n]
            v_cols = kv_rows[n:]
            k_codes, k_scales = codes[:n], scales[:n, :, 0]
            v_codes, v_scales = codes[n:], scales[n:, :, 0]
        else:
            k_cols = k_all[sel]
            v_cols = v_all[sel]
        # Append this step's column to every cache first so plane
        # capacity can be ensured once, before any row writes.
        lens = np.empty(n, dtype=np.int64)
        caches = []
        for j, (i, executor) in enumerate(dense_rows):
            cache = executor.decode_kv_cache(layer_idx)
            if quantized:
                cache.append_decode_col_quantized(
                    k_codes[j], k_scales[j],
                    v_codes[j], v_scales[j], positions[i],
                )
            else:
                cache.append_decode_col(k_cols[j], v_cols[j], positions[i])
            caches.append(cache)
            lens[j] = cache._len
        max_len = int(lens.max())
        min_len = int(lens.min())
        plane = self._plane(layer_idx, n, max_len)
        owners = plane.owners
        plane_k, plane_v = plane.k, plane.v
        rebuild: List[int] = []
        for j in range(n):
            cache = caches[j]
            if owners[j] is cache:
                synced_len, synced_version = cache._arena_state
                if synced_version == cache.version and synced_len == lens[j] - 1:
                    cache._arena_state = (synced_len + 1, synced_version)
                    continue
            rebuild.append(j)
        if not rebuild and min_len == max_len:
            # Steady state, uniform lengths: the new columns land in one
            # basic-slice write per plane.
            plane_k[:n, :, :, max_len - 1] = k_cols
            plane_v[:n, :, max_len - 1] = v_cols
        elif len(rebuild) < n:
            # Steady state, ragged lengths: one vectorized fancy-index
            # tail write lands every append-only row's new column at
            # its own length.
            if rebuild:
                skip = set(rebuild)
                fast = np.array([j for j in range(n) if j not in skip])
            else:
                fast = np.arange(n)
            tail = lens[fast] - 1
            plane_k[fast, :, :, tail] = k_cols[fast]
            plane_v[fast, :, tail] = v_cols[fast]
        for j in rebuild:
            # Ownership, order, or content (eviction) changed: rebuild
            # the row from cache truth (dequantized under int8).
            cache = caches[j]
            length = int(lens[j])
            k, v = cache.compute_columns(0, length)
            plane_k[j, :, :, :length] = k.transpose(0, 2, 1)
            plane_v[j, :, :length] = v
            owners[j] = cache
            cache._arena_state = (length, cache.version)

        q_pack = self._policy_qpack(n)
        np.multiply(
            q_all[sel][:, :, None, :], self._inv_sqrt_d, out=q_pack
        )
        scores = self._policy_scores(n, max_len)
        np.matmul(q_pack, plane_k[:n, :, :, :max_len], out=scores)
        if min_len < max_len:
            for j in range(n):
                if lens[j] < max_len:
                    scores[j, :, :, lens[j] :] = _MASKED
        # fmax skips NaN handling (scores are finite by construction).
        shift = np.fmax.reduce(scores, axis=-1, keepdims=True)
        scores -= shift
        np.exp(scores, out=scores)
        denom = np.add.reduce(scores, axis=-1, keepdims=True)
        # Normalize after A·V: dividing the [n, h, 1, D] head outputs
        # touches max_len/D fewer elements than dividing the scores,
        # and (exp·V)/denom distributes over the dot product.
        head_out = np.matmul(scores, plane_v[:n, :, :max_len])
        head_out /= denom
        # [n, h, 1, D] → [n, 1, h·D] reshapes in place (the moved axis
        # is the singleton), so no transpose copy is needed.
        merged[sel] = head_out.reshape(n, 1, -1)

    # ------------------------------------------------------------------
    # Chunked prefill
    # ------------------------------------------------------------------
    def project_chunk_rows(
        self,
        model: TransformerModel,
        layer_idx: int,
        rows: Dict[int, np.ndarray],
        executors: Sequence[AttentionExecutor],
        order: Sequence[int],
    ) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Fused Q/K/V projection of every incremental prefill chunk.

        ``rows[i]`` holds sequence ``i``'s chunk hidden rows
        ``[L_i, d]``.  Chunks of ≥ 2 rows are concatenated into one
        GEMM (row blocks of a multi-row GEMM are bit-identical to solo
        products); single-row chunks take a solo fused matmul because
        the single-row kernel groups its accumulation differently.
        Only executors whose :attr:`packed_decode_style` is ``"dense"``
        are projected — others keep their own projection semantics.
        """
        if model is not self._model:
            raise ValueError(
                "PackedDecodeBackend is bound to a different model; create "
                "one backend per TransformerModel"
            )
        prof = self.profiler
        t0 = prof.start() if prof is not None else 0.0
        eligible = [
            i for i, executor in zip(order, executors)
            if executor.packed_decode_style == "dense"
        ]
        multi = [i for i in eligible if len(rows[i]) >= 2]
        solo = [i for i in eligible if len(rows[i]) == 1]
        wqkv, bqkv = self._wqkv[layer_idx], self._bqkv[layer_idx]
        projected: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        if multi:
            proj = np.concatenate([rows[i] for i in multi], axis=0) @ wqkv
            proj += bqkv
            offset = 0
            for i in multi:
                n_rows = len(rows[i])
                projected[i] = self._split_qkv(proj[offset : offset + n_rows])
                offset += n_rows
        for i in solo:
            proj = rows[i] @ wqkv
            proj += bqkv
            projected[i] = self._split_qkv(proj)
        if prof is not None:
            prof.stop("prefill_chunk_proj", t0)
        return projected

    def _split_qkv(
        self, proj: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split fused ``[L, 3d]`` rows into per-head q/k/v ``[h, L, D]``."""
        cfg = self._model.config
        d, n_heads = cfg.d_model, cfg.n_heads
        return (
            split_heads(proj[:, :d], n_heads),
            split_heads(proj[:, d : 2 * d], n_heads),
            split_heads(proj[:, 2 * d :], n_heads),
        )
