"""Packed batched attention backend for the serving decode hot path.

The looped decode path issues ``B × n_layers`` separate single-row
``run_layer`` calls per mixed step — dozens of tiny NumPy ops per
sequence per layer, which leaves the interpreter, not BLAS, as the
bottleneck (PAPER.md §IV's accelerator wins precisely because it feeds
wide batched Q·K·V units).  :class:`PackedDecodeBackend` restructures
one decode step so that everything that *can* run as a single
batch-level BLAS call does:

* **fused Q/K/V projection** — one ``[B, 1, d] @ [d, 3d]`` matmul per
  layer replaces ``3B`` single-row GEMMs;
* **central dense attention core** — scores, the length-masked softmax,
  and A·V run over zero-copy views of each sequence's preallocated KV
  buffers (:class:`~repro.nn.kv_cache.LayerKVCache`), with the
  elementwise softmax stages (max, shift, exp, normalize) batched
  across sequences in a reusable padded scratch tensor;
* **fused output FC** — one ``[B, 1, h·D] @ [d, d]`` matmul replaces
  ``B`` per-sequence projections;
* **fused chunk projection** — during chunked prefill, the Q/K/V
  projections of every in-flight prompt's chunk run as one GEMM over
  the concatenated rows.

Bit-identity contract
---------------------

The packed path must produce logits **bit-identical** to the looped
oracle (``tests/test_packed_decode.py`` enforces this property across
executors, ragged lengths, pruned-head sets, and mid-generation
evictions).  That constraint dictates the design, because BLAS
reductions are not grouping-invariant:

* multi-slice ``np.matmul`` (the gufunc) computes each 2-D slice with
  the same kernel as a standalone single-row matmul, so batching the
  projections is exact — but a *2-D* ``[B, d] @ [d, d]`` GEMM is not
  (single-row products take a GEMV-shaped path whose accumulation
  differs in the last ulp);
* fusing Q/K/V into one ``[d, 3d]`` weight is exact (output columns are
  independent), and concatenating chunk rows is exact for blocks of
  ≥ 2 rows (row blocks of a GEMM are independent) — single-row chunks
  are projected solo;
* zero-padding the *reduction* axis is **not** exact on OpenBLAS (the
  k-loop blocking changes with length), so scores and A·V run per
  sequence at exact lengths over zero-copy cache views, never over a
  padded pack;
* ``max`` is order-exact, and exp/shift/normalize are elementwise, so
  those softmax stages batch across the padded scratch; the softmax
  *denominator* (a length-sensitive pairwise sum) reduces per sequence
  over exact-length views.

Executors opt in through
:attr:`~repro.nn.transformer.AttentionExecutor.packed_decode_style`:
dense caches run the central core above; SpAtten executors run their
own per-sequence core (cascade pruning decisions, progressive
quantization, trace accounting) on backend-supplied projections, with
per-sequence surviving-head sets honored by gathering live-head slices
from the full-width rows; anything else falls back to ``run_layer``
with unchanged semantics.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .attention import split_heads
from .transformer import AttentionExecutor, TransformerModel

__all__ = ["PackedDecodeBackend", "ATTENTION_BACKENDS"]

#: Selectable attention backends for the serving decode path.
ATTENTION_BACKENDS = ("looped", "packed")

#: Sentinel score for padding columns; matches the masking convention of
#: :func:`repro.nn.attention.scaled_dot_attention` and underflows to an
#: exact 0.0 after the softmax's exp.
_MASKED = -1e30


class PackedDecodeBackend:
    """Batched attention executor state shared across decode steps.

    One backend instance serves one model; the serving engine creates it
    once and passes it to every
    :meth:`~repro.nn.transformer.TransformerModel.decode_step_batch` /
    :meth:`~repro.nn.transformer.TransformerModel.prefill_chunk_batch`
    call.  The backend holds the fused per-layer projection weights and
    reusable scratch tensors (scores, denominators, head outputs), which
    grow page-aligned with the live batch instead of being rebuilt every
    step.
    """

    def __init__(self, model: TransformerModel, scratch_page_tokens: int = 64):
        if scratch_page_tokens < 1:
            raise ValueError("scratch_page_tokens must be >= 1")
        self._model = model
        self._scratch_page = scratch_page_tokens
        cfg = model.config
        d = cfg.d_model
        # Fused [d, 3d] QKV weights: output column blocks of a GEMM are
        # independent, so (x @ wqkv)[:, :d] is bit-identical to x @ wq.
        self._wqkv: List[np.ndarray] = []
        self._bqkv: List[np.ndarray] = []
        for layer_idx in range(cfg.n_layers):
            w = model.attention(layer_idx).weights
            self._wqkv.append(np.concatenate([w.wq, w.wk, w.wv], axis=1))
            self._bqkv.append(np.concatenate([w.bq, w.bk, w.bv]))
        # Reusable scratch, grown on demand.
        self._scores = np.zeros((0, cfg.n_heads, 1, 0))
        self._denom = np.zeros((0, cfg.n_heads, 1, 1))
        self._head_out = np.zeros((0, cfg.n_heads, 1, cfg.head_dim))
        self._merged = np.zeros((0, 1, d))
        #: Optional :class:`repro.telemetry.HotPathProfiler` measuring
        #: real wall-clock time per stage (the serving engine attaches
        #: it when profiling is requested).  ``None`` costs one ``is
        #: None`` check per stage — the hot path stays unchanged.
        self.profiler = None

    # ------------------------------------------------------------------
    # Scratch management
    # ------------------------------------------------------------------
    def _scores_scratch(self, n: int, max_len: int) -> np.ndarray:
        h = self._model.config.n_heads
        if self._scores.shape[0] < n or self._scores.shape[3] < max_len:
            pages = -(-max_len // self._scratch_page)
            cap = max(pages * self._scratch_page, self._scores.shape[3])
            self._scores = np.zeros((max(n, self._scores.shape[0]), h, 1, cap))
        return self._scores[:n, :, :, :max_len]

    def _batch_scratch(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        cfg = self._model.config
        if self._denom.shape[0] < n:
            self._denom = np.zeros((n, cfg.n_heads, 1, 1))
            self._head_out = np.zeros((n, cfg.n_heads, 1, cfg.head_dim))
        return self._denom[:n], self._head_out[:n]

    def _merged_scratch(self, batch: int) -> np.ndarray:
        d = self._model.config.d_model
        if self._merged.shape[0] < batch:
            self._merged = np.zeros((batch, 1, d))
        return self._merged[:batch]

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def decode_layer(
        self,
        model: TransformerModel,
        layer_idx: int,
        x: np.ndarray,
        positions: np.ndarray,
        executors: Sequence[AttentionExecutor],
    ) -> np.ndarray:
        """Packed attention of one block over a decode batch.

        Returns ``attn_out [B, d_model]``, bit-identical to
        concatenating the looped per-sequence ``run_layer`` outputs.
        """
        if model is not self._model:
            raise ValueError(
                "PackedDecodeBackend is bound to a different model; create "
                "one backend per TransformerModel"
            )
        cfg = model.config
        d, n_heads, head_dim = cfg.d_model, cfg.n_heads, cfg.head_dim
        batch = len(executors)

        # Fused batched QKV projection.  The gufunc computes each [1, d]
        # slice with the single-row kernel, so row i is bit-identical to
        # the looped path's x[i:i+1] @ w projections.
        prof = self.profiler
        t0 = prof.start() if prof is not None else 0.0
        qkv = np.matmul(x[:, None, :], self._wqkv[layer_idx])
        qkv += self._bqkv[layer_idx]
        if prof is not None:
            prof.stop("decode_qkv_proj", t0)

        merged = self._merged_scratch(batch)
        dense_rows: List[Tuple[int, np.ndarray, object]] = []
        fallback_rows: List[int] = []
        for i, executor in enumerate(executors):
            row = qkv[i]  # [1, 3d]
            style = executor.packed_decode_style
            if style == "none":
                # Fallback rows ride through the batched GEMMs and are
                # overwritten below; opt-out executors are rare enough
                # that the wasted rows cost less than gathering the
                # batch around them.
                fallback_rows.append(i)
                continue
            q = split_heads(row[:, :d], n_heads)
            k_new = split_heads(row[:, d : 2 * d], n_heads)
            v_new = split_heads(row[:, 2 * d :], n_heads)
            if style == "dense":
                cache = executor.decode_kv_append(
                    layer_idx, k_new, v_new, positions[i : i + 1]
                )
                dense_rows.append((i, q, cache))
            elif style == "custom":
                t0 = prof.start() if prof is not None else 0.0
                merged[i] = executor.decode_attend_packed(
                    layer_idx, model, q, k_new, v_new, positions[i : i + 1]
                )
                if prof is not None:
                    prof.stop("decode_custom_core", t0)
            else:
                raise ValueError(
                    f"unknown packed_decode_style {style!r} from "
                    f"{type(executor).__name__}"
                )
        if dense_rows:
            t0 = prof.start() if prof is not None else 0.0
            self._dense_core(dense_rows, merged, head_dim)
            if prof is not None:
                prof.stop("decode_dense_core", t0)

        # Fused batched output FC over every packed sequence's merged
        # head features (row blocks are independent, so each row equals
        # the looped [1, h*D] @ wo product).
        t0 = prof.start() if prof is not None else 0.0
        weights = model.attention(layer_idx).weights
        out = np.matmul(merged, weights.wo)
        out += weights.bo
        attn_out = out[:, 0, :]
        if prof is not None:
            prof.stop("decode_output_fc", t0)
        for i in fallback_rows:
            t0 = prof.start() if prof is not None else 0.0
            attn_out[i] = executors[i].run_layer(
                layer_idx, model, x[i : i + 1], positions[i : i + 1], "decode"
            ).output[0]
            if prof is not None:
                prof.stop("decode_fallback", t0)
        return attn_out

    def _dense_core(
        self,
        dense_rows: List[Tuple[int, np.ndarray, object]],
        merged: np.ndarray,
        head_dim: int,
    ) -> None:
        """Attention core for the cache-only (dense) sequences.

        Scores and A·V run per sequence at exact lengths over zero-copy
        cache views (BLAS reductions are not padding-invariant); the
        elementwise softmax stages batch across the padded scratch.
        """
        lens = [len(cache) for (_, _, cache) in dense_rows]
        n, max_len, min_len = len(dense_rows), max(lens), min(lens)
        scores = self._scores_scratch(n, max_len)
        if min_len < max_len:
            # Mask the ragged tail once for the whole batch; each
            # sequence's real columns are then overwritten in place by
            # its exact-length scores below.
            scores[:, :, :, min_len:] = _MASKED
        for j, (_, q, cache) in enumerate(dense_rows):
            np.matmul(
                q, cache.keys.transpose(0, 2, 1), out=scores[j, :, :, : lens[j]]
            )
        scores /= np.sqrt(head_dim)
        # max is order-exact and shift/exp/normalize are elementwise, so
        # they batch; the denominator's pairwise sum is length-sensitive
        # and reduces per sequence over the exact live width.
        shift = scores.max(axis=-1, keepdims=True)
        scores -= shift
        np.exp(scores, out=scores)
        denom, head_out = self._batch_scratch(n)
        for j in range(n):
            np.sum(
                scores[j, :, :, : lens[j]], axis=-1, keepdims=True,
                out=denom[j],
            )
        scores /= denom
        for j, (_, _, cache) in enumerate(dense_rows):
            np.matmul(scores[j, :, :, : lens[j]], cache.values, out=head_out[j])
        rows = [i for (i, _, _) in dense_rows]
        merged[rows] = head_out.transpose(0, 2, 1, 3).reshape(n, 1, -1)

    # ------------------------------------------------------------------
    # Chunked prefill
    # ------------------------------------------------------------------
    def project_chunk_rows(
        self,
        model: TransformerModel,
        layer_idx: int,
        rows: Dict[int, np.ndarray],
        executors: Sequence[AttentionExecutor],
        order: Sequence[int],
    ) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Fused Q/K/V projection of every incremental prefill chunk.

        ``rows[i]`` holds sequence ``i``'s chunk hidden rows
        ``[L_i, d]``.  Chunks of ≥ 2 rows are concatenated into one
        GEMM (row blocks of a multi-row GEMM are bit-identical to solo
        products); single-row chunks take a solo fused matmul because
        the single-row kernel groups its accumulation differently.
        Only executors whose :attr:`packed_decode_style` is ``"dense"``
        are projected — others keep their own projection semantics.
        """
        if model is not self._model:
            raise ValueError(
                "PackedDecodeBackend is bound to a different model; create "
                "one backend per TransformerModel"
            )
        prof = self.profiler
        t0 = prof.start() if prof is not None else 0.0
        eligible = [
            i for i, executor in zip(order, executors)
            if executor.packed_decode_style == "dense"
        ]
        multi = [i for i in eligible if len(rows[i]) >= 2]
        solo = [i for i in eligible if len(rows[i]) == 1]
        wqkv, bqkv = self._wqkv[layer_idx], self._bqkv[layer_idx]
        projected: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        if multi:
            proj = np.concatenate([rows[i] for i in multi], axis=0) @ wqkv
            proj += bqkv
            offset = 0
            for i in multi:
                n_rows = len(rows[i])
                projected[i] = self._split_qkv(proj[offset : offset + n_rows])
                offset += n_rows
        for i in solo:
            proj = rows[i] @ wqkv
            proj += bqkv
            projected[i] = self._split_qkv(proj)
        if prof is not None:
            prof.stop("prefill_chunk_proj", t0)
        return projected

    def _split_qkv(
        self, proj: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split fused ``[L, 3d]`` rows into per-head q/k/v ``[h, L, D]``."""
        cfg = self._model.config
        d, n_heads = cfg.d_model, cfg.n_heads
        return (
            split_heads(proj[:, :d], n_heads),
            split_heads(proj[:, d : 2 * d], n_heads),
            split_heads(proj[:, 2 * d :], n_heads),
        )
