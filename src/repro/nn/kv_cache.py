"""Per-layer key/value cache for the GPT generation stage.

The paper's generation stage concatenates the K and V of each newly
generated token with the cached ones (Fig. 3 right).  Cascade token
pruning additionally *removes* cached entries: "once a token is pruned,
the QKV of it will never be used in all the following attention heads and
layers".  The cache therefore tracks, for every cached column, the
original sentence position it came from.

Storage model (capacity/length separation)
------------------------------------------

The cache distinguishes the *live length* (columns holding real K/V
state) from the *capacity* (columns the backing buffers can hold).  By
default buffers are preallocated and grown by amortized doubling at
**page granularity** — ``page_tokens`` columns per growth quantum, the
same unit the serving memory pool (:class:`repro.serving.KVMemoryPool`)
budgets in — so appending a decode token is an O(1) in-place write
instead of an O(L) ``np.concatenate`` (O(L²) copy traffic over a
generation).  :attr:`keys` / :attr:`values` / :attr:`token_ids` expose
zero-copy views of the live prefix, and :meth:`keep` compacts surviving
columns in place.  ``preallocate=False`` restores the historical
concatenate-per-append storage (kept as a benchmarking baseline for
``benchmarks/bench_decode_step.py``).

Numerics-policy storage (dtype parameterization)
------------------------------------------------

``dtype`` selects the storage representation of the cached planes, one
per :mod:`repro.nn.numerics` ladder tier:

* ``np.float64`` (default) — the bit-exact oracle representation;
  every pre-existing code path is unchanged.
* ``np.float32`` — half the resident bytes; reads are still zero-copy
  views, appends cast on write.
* ``np.int8`` — quantized codes with one fp32 scale per (head, column)
  row for K and V each (:func:`repro.core.quantization.quantize_rows`).
  Reads (:attr:`keys` / :attr:`values` / :meth:`padded_to` /
  :meth:`compute_columns`) return *dequantized fp32 copies*, so every
  consumer of the cache API keeps working unmodified; writers that
  already hold codes (the batched decode backend quantizes whole
  batches at once) use :meth:`append_quantized` to skip requantization.
  Scales travel with their rows through :meth:`keep` compaction — an
  evicted-and-compacted cache never requantizes surviving columns.

Memory accounting is dtype-aware: ``bytes_per_element`` describes the
*storage* width of a cache entry in DRAM, independent of the float64
arrays the exact tier computes with.  The fp16 default (2, matching
``ModelConfig.bytes_per_element``) models the paper's DRAM traffic; the
numerics policies pass their true storage width (4 for fp32, 1 for
int8, where :attr:`nbytes` additionally counts the fp32 scale columns).
:attr:`nbytes` counts live columns (what the pool pages back);
:attr:`capacity_nbytes` counts the preallocated buffers.

:attr:`version` counts in-place content mutations that are *not*
appends (today: :meth:`keep` compaction).  The batched decode backend
uses it to invalidate per-sequence arena slots cheaply: an unchanged
version plus a grown length means "columns were only appended", so the
arena copies just the new tail.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["LayerKVCache", "KVCache"]


class LayerKVCache:
    """KV cache of a single layer: per-head tensors plus position labels.

    Args:
        n_heads: number of attention heads the buffers store.
        head_dim: per-head feature width.
        bytes_per_element: DRAM storage width per scalar (accounting).
        page_tokens: growth quantum in cache columns.  Capacity is always
            a multiple of this, mirroring the serving pool's page size
            (the pool charges pages for *live* columns; the doubling
            policy may preallocate capacity up to ~2× ahead of them).
        preallocate: grow buffers by amortized doubling (default).  When
            False, every append reallocates exactly-sized arrays via
            ``np.concatenate`` — the pre-packed-backend behaviour.
        dtype: storage dtype of the K/V planes (see module docstring);
            ``np.int8`` stores codes plus per-(head, column) fp32 scales.
    """

    def __init__(
        self,
        n_heads: int,
        head_dim: int,
        bytes_per_element: int = 2,
        page_tokens: int = 16,
        preallocate: bool = True,
        # repro: allow[det-dtype-literal] -- the *default* is the exact
        # tier's fp64; policies override it via NumericsPolicy.kv_dtype
        dtype=np.float64,
    ):
        if bytes_per_element <= 0:
            raise ValueError("bytes_per_element must be positive")
        if page_tokens < 1:
            raise ValueError("page_tokens must be >= 1")
        self.dtype = np.dtype(dtype)
        if self.dtype not in (
            # repro: allow[det-dtype-literal] -- the exhaustive list of
            # storage dtypes the numerics ladder defines, not a hard-coding
            np.dtype(np.float64), np.dtype(np.float32), np.dtype(np.int8)
        ):
            raise ValueError(
                f"unsupported KV storage dtype {self.dtype}; "
                "expected float64, float32, or int8"
            )
        self.quantized = self.dtype == np.dtype(np.int8)
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.bytes_per_element = bytes_per_element
        self.page_tokens = page_tokens
        self.preallocate = preallocate
        self._len = 0
        self._keys = np.zeros((n_heads, 0, head_dim), dtype=self.dtype)
        self._values = np.zeros((n_heads, 0, head_dim), dtype=self.dtype)
        if self.quantized:
            # One fp32 scale per (head, column) row, for K and V each.
            self._kscales = np.ones((n_heads, 0), dtype=np.float32)
            self._vscales = np.ones((n_heads, 0), dtype=np.float32)
        self._token_ids = np.zeros(0, dtype=np.int64)
        #: Whether buffer columns past the live length may hold stale
        #: (non-zero) data — set by :meth:`keep` compaction, consumed by
        #: :meth:`padded_to`, which needs a zero tail.
        self._tail_dirty = False
        #: Cumulative count of columns evicted through :meth:`keep`.
        self.evicted_tokens = 0
        #: In-place non-append mutation counter (see module docstring).
        self.version = 0

    def __len__(self) -> int:
        return self._len

    @property
    def capacity(self) -> int:
        """Columns the backing buffers can hold without reallocating."""
        return self._keys.shape[1]

    @property
    def keys(self) -> np.ndarray:
        """Live key columns ``[h, len, D]``.

        A zero-copy view for float storage; the int8 tier returns a
        dequantized fp32 copy so consumers are representation-agnostic.
        """
        if self.quantized:
            return self._dequant(self._keys, self._kscales, 0, self._len)
        return self._keys[:, : self._len, :]

    @property
    def values(self) -> np.ndarray:
        """Live value columns ``[h, len, D]`` (see :attr:`keys`)."""
        if self.quantized:
            return self._dequant(self._values, self._vscales, 0, self._len)
        return self._values[:, : self._len, :]

    @property
    def key_scales(self) -> Optional[np.ndarray]:
        """Per-(head, column) fp32 key scales view, or None unquantized."""
        if not self.quantized:
            return None
        return self._kscales[:, : self._len]

    @property
    def value_scales(self) -> Optional[np.ndarray]:
        """Per-(head, column) fp32 value scales view, or None unquantized."""
        if not self.quantized:
            return None
        return self._vscales[:, : self._len]

    @property
    def token_ids(self) -> np.ndarray:
        """Zero-copy view of the live columns' original positions."""
        return self._token_ids[: self._len]

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def _aligned(self, n_tokens: int) -> int:
        pages = -(-int(n_tokens) // self.page_tokens)  # ceil division
        return pages * self.page_tokens

    def reserve(self, n_tokens: int) -> None:
        """Grow capacity to hold at least ``n_tokens`` columns.

        Used by prefill to size buffers for a known prompt length up
        front, so chunked summarization never pays a mid-prefill
        reallocation.  A no-op when capacity already suffices or in
        concatenate-growth mode.
        """
        if not self.preallocate or n_tokens <= self.capacity:
            return
        self._grow(n_tokens)

    def _grow(self, min_capacity: int) -> None:
        new_cap = self._aligned(max(2 * self.capacity, min_capacity))
        keys = np.zeros((self.n_heads, new_cap, self.head_dim), dtype=self.dtype)
        values = np.zeros((self.n_heads, new_cap, self.head_dim), dtype=self.dtype)
        token_ids = np.zeros(new_cap, dtype=np.int64)
        keys[:, : self._len] = self._keys[:, : self._len]
        values[:, : self._len] = self._values[:, : self._len]
        token_ids[: self._len] = self._token_ids[: self._len]
        self._keys, self._values, self._token_ids = keys, values, token_ids
        if self.quantized:
            kscales = np.ones((self.n_heads, new_cap), dtype=np.float32)
            vscales = np.ones((self.n_heads, new_cap), dtype=np.float32)
            kscales[:, : self._len] = self._kscales[:, : self._len]
            vscales[:, : self._len] = self._vscales[:, : self._len]
            self._kscales, self._vscales = kscales, vscales
        self._tail_dirty = False

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, k: np.ndarray, v: np.ndarray, token_ids: np.ndarray) -> None:
        """Add new per-head K/V columns (``[h, L_new, D]``) in place.

        Float storage casts on write; int8 storage quantizes each
        (head, column) row through
        :func:`repro.core.quantization.quantize_rows` — these are the
        "per-row scales computed at prefill".
        """
        if k.shape != v.shape:
            raise ValueError("K and V shapes must match")
        if k.shape[0] != self.n_heads or k.shape[2] != self.head_dim:
            raise ValueError(
                f"expected [h={self.n_heads}, *, D={self.head_dim}], got {k.shape}"
            )
        if k.shape[1] != len(token_ids):
            raise ValueError("token_ids must label every appended column")
        if self.quantized:
            from ..core.quantization import quantize_rows

            k_codes, k_scales = quantize_rows(k, bits=8, axis=-1)
            v_codes, v_scales = quantize_rows(v, bits=8, axis=-1)
            self._append_storage(
                k_codes, v_codes, token_ids,
                k_scales[..., 0], v_scales[..., 0],
            )
            return
        self._append_storage(k, v, token_ids)

    def append_quantized(
        self,
        k_codes: np.ndarray,
        k_scales: np.ndarray,
        v_codes: np.ndarray,
        v_scales: np.ndarray,
        token_ids: np.ndarray,
    ) -> None:
        """Add pre-quantized columns (int8 storage only).

        The batched decode backend quantizes a whole batch's new K/V
        columns in one :func:`~repro.core.quantization.quantize_rows`
        call and hands each cache its slice here, skipping per-sequence
        requantization.  ``*_codes`` are ``[h, L_new, D]`` int8;
        ``*_scales`` are ``[h, L_new]`` (or ``[h, L_new, 1]``) fp32.
        """
        if not self.quantized:
            raise ValueError("append_quantized requires int8 storage dtype")
        if k_codes.shape != v_codes.shape:
            raise ValueError("K and V code shapes must match")
        if k_codes.shape[0] != self.n_heads or k_codes.shape[2] != self.head_dim:
            raise ValueError(
                f"expected [h={self.n_heads}, *, D={self.head_dim}], "
                f"got {k_codes.shape}"
            )
        if k_codes.shape[1] != len(token_ids):
            raise ValueError("token_ids must label every appended column")
        k_scales = np.asarray(k_scales)
        v_scales = np.asarray(v_scales)
        if k_scales.ndim == 3:
            k_scales = k_scales[..., 0]
        if v_scales.ndim == 3:
            v_scales = v_scales[..., 0]
        self._append_storage(k_codes, v_codes, token_ids, k_scales, v_scales)

    def append_decode_col(self, k: np.ndarray, v: np.ndarray, token_id) -> None:
        """O(1) single-column decode append (``[h, D]`` per plane).

        The policy decode backend's per-row hot loop: minimal checks,
        no reshapes.  Float storage only — int8 callers use
        :meth:`append_decode_col_quantized` with precomputed codes.
        """
        if self.quantized or not self.preallocate:
            self.append(k[:, None, :], v[:, None, :], [token_id])
            return
        pos = self._len
        keys = self._keys
        if pos + 1 > keys.shape[1]:
            self._grow(pos + 1)
            keys = self._keys
        keys[:, pos] = k
        self._values[:, pos] = v
        self._token_ids[pos] = token_id
        self._len = pos + 1

    def append_decode_col_quantized(
        self,
        k_codes: np.ndarray,
        k_scales: np.ndarray,
        v_codes: np.ndarray,
        v_scales: np.ndarray,
        token_id,
    ) -> None:
        """O(1) single pre-quantized column append (int8 storage).

        ``*_codes`` are ``[h, D]`` int8; ``*_scales`` are ``[h]`` fp32
        (the backend quantizes the whole batch's new columns in one
        :func:`~repro.core.quantization.quantize_rows` call).
        """
        if not self.quantized:
            raise ValueError(
                "append_decode_col_quantized requires int8 storage dtype"
            )
        if not self.preallocate:
            self.append_quantized(
                k_codes[:, None, :], k_scales[:, None],
                v_codes[:, None, :], v_scales[:, None], [token_id],
            )
            return
        pos = self._len
        keys = self._keys
        if pos + 1 > keys.shape[1]:
            self._grow(pos + 1)
            keys = self._keys
        keys[:, pos] = k_codes
        self._values[:, pos] = v_codes
        self._kscales[:, pos] = k_scales
        self._vscales[:, pos] = v_scales
        self._token_ids[pos] = token_id
        self._len = pos + 1

    def _append_storage(self, k, v, token_ids, k_scales=None, v_scales=None):
        n_new = k.shape[1]
        if not self.preallocate:
            self._keys = np.concatenate(
                [self._keys[:, : self._len], k], axis=1
            ).astype(self.dtype, copy=False)
            self._values = np.concatenate(
                [self._values[:, : self._len], v], axis=1
            ).astype(self.dtype, copy=False)
            self._token_ids = np.concatenate(
                [self.token_ids, np.asarray(token_ids)]
            )
            if self.quantized:
                self._kscales = np.concatenate(
                    [self._kscales[:, : self._len], k_scales], axis=1
                ).astype(np.float32, copy=False)
                self._vscales = np.concatenate(
                    [self._vscales[:, : self._len], v_scales], axis=1
                ).astype(np.float32, copy=False)
            self._len += n_new
            return
        if self._len + n_new > self.capacity:
            self._grow(self._len + n_new)
        end = self._len + n_new
        self._keys[:, self._len : end] = k
        self._values[:, self._len : end] = v
        self._token_ids[self._len : end] = np.asarray(token_ids)
        if self.quantized:
            self._kscales[:, self._len : end] = k_scales
            self._vscales[:, self._len : end] = v_scales
        self._len = end

    def keep(self, column_indices: np.ndarray) -> None:
        """Retain only the given cache columns (cascade token pruning).

        ``column_indices`` index the *current* cache layout and must be
        sorted so the original token order is preserved (the top-k engine
        preserves input order; Section IV-B).  Surviving columns are
        compacted toward the front of the existing buffers — no
        reallocation.  Quantized scales travel with their rows, so
        compaction never requantizes.  An empty index set empties the
        cache; out-of-range indices raise ``ValueError``.
        """
        column_indices = np.asarray(column_indices, dtype=np.int64).reshape(-1)
        if len(column_indices):
            if not np.all(np.diff(column_indices) > 0):
                raise ValueError("column_indices must be strictly increasing")
            if column_indices[0] < 0 or column_indices[-1] >= len(self):
                raise ValueError(
                    f"column index out of range: cache has {len(self)} columns, "
                    f"got indices in [{column_indices[0]}, {column_indices[-1]}]"
                )
        n_kept = len(column_indices)
        self.evicted_tokens += self._len - n_kept
        if not self.preallocate:
            self._keys = self._keys[:, : self._len][:, column_indices, :]
            self._values = self._values[:, : self._len][:, column_indices, :]
            if self.quantized:
                self._kscales = self._kscales[:, : self._len][:, column_indices]
                self._vscales = self._vscales[:, : self._len][:, column_indices]
            self._token_ids = self.token_ids[column_indices]
            self._len = n_kept
            self.version += 1
            return
        if n_kept < self._len:
            # Advanced indexing on the right materializes the survivors
            # before assignment, so the overlapping copy is safe.
            self._keys[:, :n_kept] = self._keys[:, column_indices]
            self._values[:, :n_kept] = self._values[:, column_indices]
            if self.quantized:
                self._kscales[:, :n_kept] = self._kscales[:, column_indices]
                self._vscales[:, :n_kept] = self._vscales[:, column_indices]
            self._token_ids[:n_kept] = self._token_ids[column_indices]
            self._len = n_kept
            self._tail_dirty = True
            self.version += 1

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def _dequant(self, codes, scales, start, end):
        return (
            codes[:, start:end, :].astype(np.float32)
            * scales[:, start:end, None]
        )

    def compute_columns(
        self, start: int = 0, end: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Columns ``[start, end)`` as float arrays for compute.

        Float storage returns zero-copy views; int8 storage returns
        dequantized fp32 copies.  The batched decode backend uses this
        to (re)fill arena slots — including the one-column fast path
        after each decode append.
        """
        end = self._len if end is None else end
        if not 0 <= start <= end <= self._len:
            raise ValueError(
                f"invalid column range [{start}, {end}) for length {self._len}"
            )
        if self.quantized:
            return (
                self._dequant(self._keys, self._kscales, start, end),
                self._dequant(self._values, self._vscales, start, end),
            )
        return (
            self._keys[:, start:end, :],
            self._values[:, start:end, :],
        )

    def as_tuple(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.keys, self.values

    def padded_to(self, total: int) -> Tuple[np.ndarray, np.ndarray]:
        """K/V padded with zero columns out to ``total`` columns.

        Chunked dense prefill attends against K/V padded to the final
        prompt width so the softmax reduction matches the monolithic
        pass column-for-column (see
        :meth:`repro.nn.transformer.DenseExecutor.begin_prefill`).  With
        preallocated float buffers this is a zero-copy view — capacity
        is grown to ``total`` and the tail is guaranteed zero; the
        concatenate-growth mode and the int8 tier (which must
        dequantize) materialize padded copies.
        """
        if total < self._len:
            raise ValueError(
                f"cannot pad {self._len} live columns down to {total}"
            )
        if self.quantized:
            k = np.zeros((self.n_heads, total, self.head_dim), dtype=np.float32)
            v = np.zeros((self.n_heads, total, self.head_dim), dtype=np.float32)
            k[:, : self._len] = self._dequant(self._keys, self._kscales, 0, self._len)
            v[:, : self._len] = self._dequant(self._values, self._vscales, 0, self._len)
            return k, v
        if not self.preallocate:
            pad = np.zeros(
                (self.n_heads, total - self._len, self.head_dim),
                dtype=self.dtype,
            )
            return (
                np.concatenate([self.keys, pad], axis=1),
                np.concatenate([self.values, pad], axis=1),
            )
        self.reserve(total)
        if self._tail_dirty:
            self._keys[:, self._len :] = 0.0
            self._values[:, self._len :] = 0.0
            self._tail_dirty = False
        return self._keys[:, :total, :], self._values[:, :total, :]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def _bytes_per_column(self) -> int:
        """Storage bytes one cache column costs (K + V, all heads)."""
        per_col = 2 * self.n_heads * self.head_dim * self.bytes_per_element
        if self.quantized:
            # Two fp32 scales (K and V) per head per column.
            per_col += 2 * self.n_heads * 4
        return per_col

    @property
    def nbytes(self) -> int:
        """Live-column footprint in bytes at the configured storage width."""
        return self._len * self._bytes_per_column

    @property
    def n_bytes(self) -> int:
        """Backward-compatible alias for :attr:`nbytes`."""
        return self.nbytes

    @property
    def capacity_nbytes(self) -> int:
        """Preallocated-buffer footprint at the storage width."""
        return self.capacity * self._bytes_per_column


class KVCache:
    """All-layer cache container used by the generation loop."""

    def __init__(
        self,
        n_layers: int,
        n_heads: int,
        head_dim: int,
        bytes_per_element: int = 2,
        page_tokens: int = 16,
        preallocate: bool = True,
        # repro: allow[det-dtype-literal] -- exact-tier default, overridden
        # per policy via NumericsPolicy.kv_dtype
        dtype=np.float64,
    ):
        self.layers: List[LayerKVCache] = [
            LayerKVCache(
                n_heads, head_dim, bytes_per_element,
                page_tokens=page_tokens, preallocate=preallocate,
                dtype=dtype,
            )
            for _ in range(n_layers)
        ]

    def __getitem__(self, layer_idx: int) -> LayerKVCache:
        return self.layers[layer_idx]

    def __len__(self) -> int:
        return len(self.layers)

    def reserve(self, n_tokens: int) -> None:
        """Grow every layer's capacity to at least ``n_tokens`` columns."""
        for layer in self.layers:
            layer.reserve(n_tokens)

    @property
    def total_cached_tokens(self) -> int:
        return sum(len(layer) for layer in self.layers)

    @property
    def total_evicted_tokens(self) -> int:
        """Columns reclaimed by cascade pruning, summed over layers."""
        return sum(layer.evicted_tokens for layer in self.layers)

    def lengths(self) -> List[int]:
        """Per-layer live column counts (the serving pool syncs on these)."""
        return [len(layer) for layer in self.layers]

    @property
    def nbytes(self) -> int:
        """Total live-column footprint in bytes at the storage width."""
        return sum(layer.nbytes for layer in self.layers)

    @property
    def n_bytes(self) -> int:
        """Backward-compatible alias for :attr:`nbytes`."""
        return self.nbytes

    @property
    def capacity_nbytes(self) -> int:
        """Total preallocated-buffer footprint at the storage width."""
        return sum(layer.capacity_nbytes for layer in self.layers)
