"""Per-layer key/value cache for the GPT generation stage.

The paper's generation stage concatenates the K and V of each newly
generated token with the cached ones (Fig. 3 right).  Cascade token
pruning additionally *removes* cached entries: "once a token is pruned,
the QKV of it will never be used in all the following attention heads and
layers".  The cache therefore tracks, for every cached column, the
original sentence position it came from.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["LayerKVCache", "KVCache"]


class LayerKVCache:
    """KV cache of a single layer: per-head tensors plus position labels."""

    def __init__(self, n_heads: int, head_dim: int):
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.keys = np.zeros((n_heads, 0, head_dim))
        self.values = np.zeros((n_heads, 0, head_dim))
        self.token_ids = np.zeros(0, dtype=np.int64)

    def __len__(self) -> int:
        return self.keys.shape[1]

    def append(self, k: np.ndarray, v: np.ndarray, token_ids: np.ndarray) -> None:
        """Concatenate new per-head K/V columns (``[h, L_new, D]``)."""
        if k.shape != v.shape:
            raise ValueError("K and V shapes must match")
        if k.shape[0] != self.n_heads or k.shape[2] != self.head_dim:
            raise ValueError(
                f"expected [h={self.n_heads}, *, D={self.head_dim}], got {k.shape}"
            )
        if k.shape[1] != len(token_ids):
            raise ValueError("token_ids must label every appended column")
        self.keys = np.concatenate([self.keys, k], axis=1)
        self.values = np.concatenate([self.values, v], axis=1)
        self.token_ids = np.concatenate([self.token_ids, np.asarray(token_ids)])

    def keep(self, column_indices: np.ndarray) -> None:
        """Retain only the given cache columns (cascade token pruning).

        ``column_indices`` index the *current* cache layout and must be
        sorted so the original token order is preserved (the top-k engine
        preserves input order; Section IV-B).
        """
        column_indices = np.asarray(column_indices)
        if len(column_indices) and not np.all(np.diff(column_indices) > 0):
            raise ValueError("column_indices must be strictly increasing")
        self.keys = self.keys[:, column_indices, :]
        self.values = self.values[:, column_indices, :]
        self.token_ids = self.token_ids[column_indices]

    def as_tuple(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.keys, self.values

    @property
    def n_bytes(self) -> int:
        """Cache footprint in bytes at fp16 storage."""
        return int(self.keys.size + self.values.size) * 2


class KVCache:
    """All-layer cache container used by the generation loop."""

    def __init__(self, n_layers: int, n_heads: int, head_dim: int):
        self.layers: List[LayerKVCache] = [
            LayerKVCache(n_heads, head_dim) for _ in range(n_layers)
        ]

    def __getitem__(self, layer_idx: int) -> LayerKVCache:
        return self.layers[layer_idx]

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def total_cached_tokens(self) -> int:
        return sum(len(layer) for layer in self.layers)

    @property
    def n_bytes(self) -> int:
        return sum(layer.n_bytes for layer in self.layers)
