"""Per-layer key/value cache for the GPT generation stage.

The paper's generation stage concatenates the K and V of each newly
generated token with the cached ones (Fig. 3 right).  Cascade token
pruning additionally *removes* cached entries: "once a token is pruned,
the QKV of it will never be used in all the following attention heads and
layers".  The cache therefore tracks, for every cached column, the
original sentence position it came from.

Memory accounting is dtype-aware: ``bytes_per_element`` describes the
*storage* width of a cache entry in DRAM (fp16 baseline, matching
``ModelConfig.bytes_per_element``), independent of the float64 arrays
the reproduction computes with.  The serving memory pool
(:mod:`repro.serving.memory_pool`) budgets pages in exactly these bytes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["LayerKVCache", "KVCache"]


class LayerKVCache:
    """KV cache of a single layer: per-head tensors plus position labels."""

    def __init__(self, n_heads: int, head_dim: int, bytes_per_element: int = 2):
        if bytes_per_element <= 0:
            raise ValueError("bytes_per_element must be positive")
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.bytes_per_element = bytes_per_element
        self.keys = np.zeros((n_heads, 0, head_dim))
        self.values = np.zeros((n_heads, 0, head_dim))
        self.token_ids = np.zeros(0, dtype=np.int64)
        #: Cumulative count of columns evicted through :meth:`keep`.
        self.evicted_tokens = 0

    def __len__(self) -> int:
        return self.keys.shape[1]

    def append(self, k: np.ndarray, v: np.ndarray, token_ids: np.ndarray) -> None:
        """Concatenate new per-head K/V columns (``[h, L_new, D]``)."""
        if k.shape != v.shape:
            raise ValueError("K and V shapes must match")
        if k.shape[0] != self.n_heads or k.shape[2] != self.head_dim:
            raise ValueError(
                f"expected [h={self.n_heads}, *, D={self.head_dim}], got {k.shape}"
            )
        if k.shape[1] != len(token_ids):
            raise ValueError("token_ids must label every appended column")
        self.keys = np.concatenate([self.keys, k], axis=1)
        self.values = np.concatenate([self.values, v], axis=1)
        self.token_ids = np.concatenate([self.token_ids, np.asarray(token_ids)])

    def keep(self, column_indices: np.ndarray) -> None:
        """Retain only the given cache columns (cascade token pruning).

        ``column_indices`` index the *current* cache layout and must be
        sorted so the original token order is preserved (the top-k engine
        preserves input order; Section IV-B).  An empty index set empties
        the cache; out-of-range indices raise ``ValueError``.
        """
        column_indices = np.asarray(column_indices, dtype=np.int64).reshape(-1)
        if len(column_indices):
            if not np.all(np.diff(column_indices) > 0):
                raise ValueError("column_indices must be strictly increasing")
            if column_indices[0] < 0 or column_indices[-1] >= len(self):
                raise ValueError(
                    f"column index out of range: cache has {len(self)} columns, "
                    f"got indices in [{column_indices[0]}, {column_indices[-1]}]"
                )
        self.evicted_tokens += len(self) - len(column_indices)
        self.keys = self.keys[:, column_indices, :]
        self.values = self.values[:, column_indices, :]
        self.token_ids = self.token_ids[column_indices]

    def as_tuple(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.keys, self.values

    @property
    def nbytes(self) -> int:
        """Cache footprint in bytes at the configured storage width."""
        return int(self.keys.size + self.values.size) * self.bytes_per_element

    @property
    def n_bytes(self) -> int:
        """Backward-compatible alias for :attr:`nbytes`."""
        return self.nbytes


class KVCache:
    """All-layer cache container used by the generation loop."""

    def __init__(
        self,
        n_layers: int,
        n_heads: int,
        head_dim: int,
        bytes_per_element: int = 2,
    ):
        self.layers: List[LayerKVCache] = [
            LayerKVCache(n_heads, head_dim, bytes_per_element)
            for _ in range(n_layers)
        ]

    def __getitem__(self, layer_idx: int) -> LayerKVCache:
        return self.layers[layer_idx]

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def total_cached_tokens(self) -> int:
        return sum(len(layer) for layer in self.layers)

    @property
    def total_evicted_tokens(self) -> int:
        """Columns reclaimed by cascade pruning, summed over layers."""
        return sum(layer.evicted_tokens for layer in self.layers)

    def lengths(self) -> List[int]:
        """Per-layer live column counts (the serving pool syncs on these)."""
        return [len(layer) for layer in self.layers]

    @property
    def nbytes(self) -> int:
        """Total cache footprint in bytes at the storage width."""
        return sum(layer.nbytes for layer in self.layers)

    @property
    def n_bytes(self) -> int:
        """Backward-compatible alias for :attr:`nbytes`."""
        return self.nbytes
