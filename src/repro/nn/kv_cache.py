"""Per-layer key/value cache for the GPT generation stage.

The paper's generation stage concatenates the K and V of each newly
generated token with the cached ones (Fig. 3 right).  Cascade token
pruning additionally *removes* cached entries: "once a token is pruned,
the QKV of it will never be used in all the following attention heads and
layers".  The cache therefore tracks, for every cached column, the
original sentence position it came from.

Storage model (capacity/length separation)
------------------------------------------

The cache distinguishes the *live length* (columns holding real K/V
state) from the *capacity* (columns the backing buffers can hold).  By
default buffers are preallocated and grown by amortized doubling at
**page granularity** — ``page_tokens`` columns per growth quantum, the
same unit the serving memory pool (:class:`repro.serving.KVMemoryPool`)
budgets in — so appending a decode token is an O(1) in-place write
instead of an O(L) ``np.concatenate`` (O(L²) copy traffic over a
generation).  :attr:`keys` / :attr:`values` / :attr:`token_ids` expose
zero-copy views of the live prefix, and :meth:`keep` compacts surviving
columns in place.  ``preallocate=False`` restores the historical
concatenate-per-append storage (kept as a benchmarking baseline for
``benchmarks/bench_decode_step.py``).

Memory accounting is dtype-aware: ``bytes_per_element`` describes the
*storage* width of a cache entry in DRAM (fp16 baseline, matching
``ModelConfig.bytes_per_element``), independent of the float64 arrays
the reproduction computes with.  :attr:`nbytes` counts live columns
(what the pool pages back); :attr:`capacity_nbytes` counts the
preallocated buffers.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["LayerKVCache", "KVCache"]


class LayerKVCache:
    """KV cache of a single layer: per-head tensors plus position labels.

    Args:
        n_heads: number of attention heads the buffers store.
        head_dim: per-head feature width.
        bytes_per_element: DRAM storage width per scalar (accounting).
        page_tokens: growth quantum in cache columns.  Capacity is always
            a multiple of this, mirroring the serving pool's page size
            (the pool charges pages for *live* columns; the doubling
            policy may preallocate capacity up to ~2× ahead of them).
        preallocate: grow buffers by amortized doubling (default).  When
            False, every append reallocates exactly-sized arrays via
            ``np.concatenate`` — the pre-packed-backend behaviour.
    """

    def __init__(
        self,
        n_heads: int,
        head_dim: int,
        bytes_per_element: int = 2,
        page_tokens: int = 16,
        preallocate: bool = True,
    ):
        if bytes_per_element <= 0:
            raise ValueError("bytes_per_element must be positive")
        if page_tokens < 1:
            raise ValueError("page_tokens must be >= 1")
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.bytes_per_element = bytes_per_element
        self.page_tokens = page_tokens
        self.preallocate = preallocate
        self._len = 0
        self._keys = np.zeros((n_heads, 0, head_dim))
        self._values = np.zeros((n_heads, 0, head_dim))
        self._token_ids = np.zeros(0, dtype=np.int64)
        #: Whether buffer columns past the live length may hold stale
        #: (non-zero) data — set by :meth:`keep` compaction, consumed by
        #: :meth:`padded_to`, which needs a zero tail.
        self._tail_dirty = False
        #: Cumulative count of columns evicted through :meth:`keep`.
        self.evicted_tokens = 0

    def __len__(self) -> int:
        return self._len

    @property
    def capacity(self) -> int:
        """Columns the backing buffers can hold without reallocating."""
        return self._keys.shape[1]

    @property
    def keys(self) -> np.ndarray:
        """Zero-copy view ``[h, len, D]`` of the live key columns."""
        return self._keys[:, : self._len, :]

    @property
    def values(self) -> np.ndarray:
        """Zero-copy view ``[h, len, D]`` of the live value columns."""
        return self._values[:, : self._len, :]

    @property
    def token_ids(self) -> np.ndarray:
        """Zero-copy view of the live columns' original positions."""
        return self._token_ids[: self._len]

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def _aligned(self, n_tokens: int) -> int:
        pages = -(-int(n_tokens) // self.page_tokens)  # ceil division
        return pages * self.page_tokens

    def reserve(self, n_tokens: int) -> None:
        """Grow capacity to hold at least ``n_tokens`` columns.

        Used by prefill to size buffers for a known prompt length up
        front, so chunked summarization never pays a mid-prefill
        reallocation.  A no-op when capacity already suffices or in
        concatenate-growth mode.
        """
        if not self.preallocate or n_tokens <= self.capacity:
            return
        self._grow(n_tokens)

    def _grow(self, min_capacity: int) -> None:
        new_cap = self._aligned(max(2 * self.capacity, min_capacity))
        keys = np.zeros((self.n_heads, new_cap, self.head_dim))
        values = np.zeros((self.n_heads, new_cap, self.head_dim))
        token_ids = np.zeros(new_cap, dtype=np.int64)
        keys[:, : self._len] = self._keys[:, : self._len]
        values[:, : self._len] = self._values[:, : self._len]
        token_ids[: self._len] = self._token_ids[: self._len]
        self._keys, self._values, self._token_ids = keys, values, token_ids
        self._tail_dirty = False

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, k: np.ndarray, v: np.ndarray, token_ids: np.ndarray) -> None:
        """Add new per-head K/V columns (``[h, L_new, D]``) in place."""
        if k.shape != v.shape:
            raise ValueError("K and V shapes must match")
        if k.shape[0] != self.n_heads or k.shape[2] != self.head_dim:
            raise ValueError(
                f"expected [h={self.n_heads}, *, D={self.head_dim}], got {k.shape}"
            )
        if k.shape[1] != len(token_ids):
            raise ValueError("token_ids must label every appended column")
        n_new = k.shape[1]
        if not self.preallocate:
            self._keys = np.concatenate([self.keys, k], axis=1)
            self._values = np.concatenate([self.values, v], axis=1)
            self._token_ids = np.concatenate(
                [self.token_ids, np.asarray(token_ids)]
            )
            self._len += n_new
            return
        if self._len + n_new > self.capacity:
            self._grow(self._len + n_new)
        end = self._len + n_new
        self._keys[:, self._len : end] = k
        self._values[:, self._len : end] = v
        self._token_ids[self._len : end] = np.asarray(token_ids)
        self._len = end

    def keep(self, column_indices: np.ndarray) -> None:
        """Retain only the given cache columns (cascade token pruning).

        ``column_indices`` index the *current* cache layout and must be
        sorted so the original token order is preserved (the top-k engine
        preserves input order; Section IV-B).  Surviving columns are
        compacted toward the front of the existing buffers — no
        reallocation.  An empty index set empties the cache;
        out-of-range indices raise ``ValueError``.
        """
        column_indices = np.asarray(column_indices, dtype=np.int64).reshape(-1)
        if len(column_indices):
            if not np.all(np.diff(column_indices) > 0):
                raise ValueError("column_indices must be strictly increasing")
            if column_indices[0] < 0 or column_indices[-1] >= len(self):
                raise ValueError(
                    f"column index out of range: cache has {len(self)} columns, "
                    f"got indices in [{column_indices[0]}, {column_indices[-1]}]"
                )
        n_kept = len(column_indices)
        self.evicted_tokens += self._len - n_kept
        if not self.preallocate:
            self._keys = self.keys[:, column_indices, :]
            self._values = self.values[:, column_indices, :]
            self._token_ids = self.token_ids[column_indices]
            self._len = n_kept
            return
        if n_kept < self._len:
            # Advanced indexing on the right materializes the survivors
            # before assignment, so the overlapping copy is safe.
            self._keys[:, :n_kept] = self._keys[:, column_indices]
            self._values[:, :n_kept] = self._values[:, column_indices]
            self._token_ids[:n_kept] = self._token_ids[column_indices]
            self._len = n_kept
            self._tail_dirty = True

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def as_tuple(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.keys, self.values

    def padded_to(self, total: int) -> Tuple[np.ndarray, np.ndarray]:
        """K/V padded with zero columns out to ``total`` columns.

        Chunked dense prefill attends against K/V padded to the final
        prompt width so the softmax reduction matches the monolithic
        pass column-for-column (see
        :meth:`repro.nn.transformer.DenseExecutor.begin_prefill`).  With
        preallocated buffers this is a zero-copy view — capacity is
        grown to ``total`` and the tail is guaranteed zero; the
        concatenate-growth mode materializes the historical padded copy.
        """
        if total < self._len:
            raise ValueError(
                f"cannot pad {self._len} live columns down to {total}"
            )
        if not self.preallocate:
            pad = np.zeros((self.n_heads, total - self._len, self.head_dim))
            return (
                np.concatenate([self.keys, pad], axis=1),
                np.concatenate([self.values, pad], axis=1),
            )
        self.reserve(total)
        if self._tail_dirty:
            self._keys[:, self._len :] = 0.0
            self._values[:, self._len :] = 0.0
            self._tail_dirty = False
        return self._keys[:, :total, :], self._values[:, :total, :]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Live-column footprint in bytes at the configured storage width."""
        return (
            2 * self.n_heads * self._len * self.head_dim * self.bytes_per_element
        )

    @property
    def n_bytes(self) -> int:
        """Backward-compatible alias for :attr:`nbytes`."""
        return self.nbytes

    @property
    def capacity_nbytes(self) -> int:
        """Preallocated-buffer footprint at the storage width."""
        return (
            2 * self.n_heads * self.capacity * self.head_dim
            * self.bytes_per_element
        )


class KVCache:
    """All-layer cache container used by the generation loop."""

    def __init__(
        self,
        n_layers: int,
        n_heads: int,
        head_dim: int,
        bytes_per_element: int = 2,
        page_tokens: int = 16,
        preallocate: bool = True,
    ):
        self.layers: List[LayerKVCache] = [
            LayerKVCache(
                n_heads, head_dim, bytes_per_element,
                page_tokens=page_tokens, preallocate=preallocate,
            )
            for _ in range(n_layers)
        ]

    def __getitem__(self, layer_idx: int) -> LayerKVCache:
        return self.layers[layer_idx]

    def __len__(self) -> int:
        return len(self.layers)

    def reserve(self, n_tokens: int) -> None:
        """Grow every layer's capacity to at least ``n_tokens`` columns."""
        for layer in self.layers:
            layer.reserve(n_tokens)

    @property
    def total_cached_tokens(self) -> int:
        return sum(len(layer) for layer in self.layers)

    @property
    def total_evicted_tokens(self) -> int:
        """Columns reclaimed by cascade pruning, summed over layers."""
        return sum(layer.evicted_tokens for layer in self.layers)

    def lengths(self) -> List[int]:
        """Per-layer live column counts (the serving pool syncs on these)."""
        return [len(layer) for layer in self.layers]

    @property
    def nbytes(self) -> int:
        """Total live-column footprint in bytes at the storage width."""
        return sum(layer.nbytes for layer in self.layers)

    @property
    def n_bytes(self) -> int:
        """Backward-compatible alias for :attr:`nbytes`."""
        return self.nbytes

    @property
    def capacity_nbytes(self) -> int:
        """Total preallocated-buffer footprint at the storage width."""
        return sum(layer.capacity_nbytes for layer in self.layers)
