"""Model-weight constructors for the substrate.

Two constructors are provided:

* :func:`random_model` — Gaussian weights, used by unit tests that only
  exercise shapes and numerics.

* :func:`build_semantic_model` — the reproduction's stand-in for a
  *trained* BERT/GPT-2 (see DESIGN.md, substitution table).  Offline we
  cannot load pretrained checkpoints, but cascade pruning does not depend
  on the literal weights — it depends on the empirical *structure* of
  trained attention that the paper exploits:

  1. attention probability mass concentrates on a minority of salient
     (content) tokens, while structural/function tokens receive little
     attention (paper Fig. 5, Fig. 22);
  2. some heads matter much more than others (paper Section III-B,
     citing Voita et al.);
  3. value vectors of attended tokens carry the information that the
     output depends on (so pruning unattended tokens is harmless, and
     pruning attended ones is not).

  ``build_semantic_model`` constructs weights with exactly these three
  properties, parameterised by a :class:`SemanticSpec` that assigns each
  vocabulary item a salience (how strongly heads attend to it) and an
  evidence vector (the label/topic information its value carries).

Feature layout of the embedding space (first dims of ``d_model``):

====================  =========================================================
dim 0 (CONST)         constant 1.0 — gives every query a shared direction so
                      that keys of salient tokens win the dot product
dim 1 (SALIENCE)      the token's salience score
dims 2..2+E           evidence block (class one-hot or topic signature)
dims 2+E..2+E+P       sinusoidal position code (written by the position
                      embedding; drives the *local* attention heads)
remaining dims        random per-token identity features
====================  =========================================================

Two head families are constructed, mirroring the empirically observed
split in trained transformers (Voita et al., cited by the paper):

* **content heads** attend to salient tokens wherever they are — these
  produce the global importance signal cascade token pruning uses;
* **local heads** attend by position (score peaks at small query-key
  distance via the sinusoidal code) — these keep *recent* context
  important in causal models, exactly the property that lets GPT-style
  token pruning preserve the live topic.

Weak (redundant) heads of both families write small outputs, giving
cascade head pruning its targets.  Strong heads additionally specialise
on evidence sub-blocks, so over-pruning heads loses class information —
the Fig. 21 head-curve cliff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..config import ModelConfig
from .attention import AttentionWeights
from .transformer import BlockParams, ModelParams

__all__ = [
    "CONST_DIM",
    "SALIENCE_DIM",
    "EVIDENCE_START",
    "POSITION_DIMS",
    "SemanticSpec",
    "SemanticModelInfo",
    "random_model",
    "build_semantic_model",
]

CONST_DIM = 0
SALIENCE_DIM = 1
EVIDENCE_START = 2
#: Width of the sinusoidal position code (pairs of sin/cos at
#: geometrically spaced frequencies).
POSITION_DIMS = 8


def random_model(config: ModelConfig, seed: int = 0) -> ModelParams:
    """Gaussian-initialised model (shape/numerics testing only)."""
    rng = np.random.default_rng(seed)
    blocks = [
        BlockParams.random(config.d_model, config.d_ff, rng)
        for _ in range(config.n_layers)
    ]
    return ModelParams(
        token_embedding=rng.normal(0, 0.5, size=(config.vocab_size, config.d_model)),
        pos_embedding=rng.normal(0, 0.02, size=(config.max_seq_len, config.d_model)),
        blocks=blocks,
    )


@dataclass
class SemanticSpec:
    """Per-vocabulary semantic structure for the constructed model.

    Attributes:
        salience: ``[vocab]`` array in ``[0, 1]``.  Function words sit
            near 0, content words near 1; attention heads attend to
            tokens roughly in proportion to ``exp(gain * salience)``.
        evidence: ``[vocab, evidence_dim]`` array; the information each
            token's value vector deposits into the residual stream.
            Class one-hot rows for classification tasks, topic
            signatures for LM tasks, zero rows for contentless tokens.
    """

    salience: np.ndarray
    evidence: np.ndarray

    def __post_init__(self) -> None:
        self.salience = np.asarray(self.salience, dtype=np.float64)
        self.evidence = np.atleast_2d(np.asarray(self.evidence, dtype=np.float64))
        if self.salience.ndim != 1:
            raise ValueError("salience must be 1-D [vocab]")
        if len(self.evidence) != len(self.salience):
            raise ValueError("salience and evidence must cover the same vocab")
        if np.any(self.salience < 0) or np.any(self.salience > 1):
            raise ValueError("salience values must lie in [0, 1]")

    @property
    def vocab_size(self) -> int:
        return len(self.salience)

    @property
    def evidence_dim(self) -> int:
        return self.evidence.shape[1]


@dataclass
class SemanticModelInfo:
    """Construction metadata (useful for tests and ablations).

    ``head_strengths[l][h]`` in ``[0, 1]`` is the built-in importance of
    head ``h`` of layer ``l``: strong heads attend sharply (to salient
    tokens or to nearby positions) and write large outputs; weak heads
    are diffuse and quiet — these are the heads cascade head pruning
    should discover and remove.  ``head_is_local[l][h]`` marks the
    position-driven heads.
    """

    head_strengths: np.ndarray  # [n_layers, n_heads]
    spec: SemanticSpec
    head_is_local: Optional[np.ndarray] = None  # [n_layers, n_heads] bool


def _head_strength_profile(
    n_layers: int, n_heads: int, strong_frac: float, rng: np.random.Generator
) -> np.ndarray:
    """Assign per-head strengths: ``strong_frac`` strong, rest weak.

    A head's role is *consistent across layers* (a base strength per
    head index plus small per-layer jitter): this is both what trained
    transformers exhibit and the property cascade head pruning relies on
    when it removes a head index from every following layer.  Strengths
    are spread rather than binary so the importance ranking is graded
    (paper Fig. 1 prunes 12 -> 10 -> 8 heads).
    """
    n_strong = max(1, int(round(strong_frac * n_heads)))
    strong = 0.7 + 0.3 * rng.random(n_strong)
    weak = 0.05 + 0.2 * rng.random(n_heads - n_strong)
    base = np.concatenate([strong, weak])
    rng.shuffle(base)
    jitter = rng.normal(0.0, 0.03, size=(n_layers, n_heads))
    return np.clip(base[None, :] + jitter, 0.02, 1.0)


def build_semantic_model(
    config: ModelConfig,
    spec: SemanticSpec,
    seed: int = 0,
    strong_frac: float = 0.7,
    local_frac: float = 0.35,
    attention_gain: float = 5.0,
    value_gain: float = 0.8,
    background_noise: float = 0.03,
    evidence_scale: float = 0.6,
    id_scale: float = 0.35,
):
    """Construct a transformer whose attention genuinely tracks salience.

    Args:
        config: model geometry (must satisfy
            ``d_model >= EVIDENCE_START + spec.evidence_dim``).
        spec: vocabulary semantics.
        seed: RNG seed; construction is fully deterministic given it.
        strong_frac: fraction of heads per layer that are strong.
        local_frac: fraction of the strong heads that are *local*
            (position-driven) rather than content-driven.
        attention_gain: logit gain from salience; larger => sharper
            attention concentration (more "dominant" probability rows,
            which also drives the progressive-quantization behaviour of
            paper Fig. 7).
        value_gain: scale of evidence written by strong heads.
        background_noise: scale of the random component of every
            projection matrix (keeps the model generic and exercises
            quantization).
        evidence_scale / id_scale: embedding feature scales.

    Returns:
        ``(ModelParams, SemanticModelInfo)``.
    """
    if spec.vocab_size != config.vocab_size:
        raise ValueError(
            f"spec covers {spec.vocab_size} tokens, config.vocab_size is "
            f"{config.vocab_size}"
        )
    if config.d_model < EVIDENCE_START + spec.evidence_dim:
        raise ValueError("d_model too small for the evidence block")

    rng = np.random.default_rng(seed)
    d_model, head_dim = config.d_model, config.head_dim
    e_dim = spec.evidence_dim
    e_slice = slice(EVIDENCE_START, EVIDENCE_START + e_dim)
    p_start = EVIDENCE_START + e_dim
    if d_model < p_start + POSITION_DIMS:
        raise ValueError("d_model too small for the position code")
    p_slice = slice(p_start, p_start + POSITION_DIMS)
    if head_dim < POSITION_DIMS:
        raise ValueError(f"head_dim must be >= {POSITION_DIMS}")

    # ------------------------------------------------------------------
    # Embeddings.
    # ------------------------------------------------------------------
    token_embedding = rng.normal(0, id_scale, size=(config.vocab_size, d_model))
    token_embedding[:, CONST_DIM] = 1.0
    token_embedding[:, SALIENCE_DIM] = spec.salience
    token_embedding[:, e_slice] = spec.evidence * evidence_scale
    token_embedding[:, p_slice] = 0.0
    pos_embedding = rng.normal(0, 0.02, size=(config.max_seq_len, d_model))
    # Sinusoidal position code: pairs (sin, cos) at geometric
    # wavelengths, so q_i . k_j of a local head sums cos(w_f (i - j)) —
    # peaked at zero distance and decaying with |i - j|.
    positions = np.arange(config.max_seq_len)[:, None]
    wavelengths = 3.0 * (4.0 ** np.arange(POSITION_DIMS // 2))
    angles = positions / wavelengths[None, :]
    pos_code = np.concatenate([np.sin(angles), np.cos(angles)], axis=1)
    pos_embedding[:, p_slice] = pos_code

    head_strengths = _head_strength_profile(
        config.n_layers, config.n_heads, strong_frac, rng
    )
    # Among the strong heads of each layer, mark ~local_frac as local.
    head_is_local = np.zeros_like(head_strengths, dtype=bool)
    for layer in range(config.n_layers):
        strong_heads = np.flatnonzero(head_strengths[layer] >= 0.5)
        n_local = int(round(local_frac * len(strong_heads)))
        head_is_local[layer, strong_heads[:n_local]] = True

    # Evidence-slot specialisation: strong heads split the evidence
    # block into groups so that over-pruning heads loses information.
    # Groups are dealt round-robin over the *strong* heads so every
    # evidence group is carried by at least one strong head.
    n_groups = 2 if e_dim <= 4 else 4
    evidence_group = np.zeros(config.n_heads, dtype=np.int64)
    strong_order = np.flatnonzero(head_strengths[0] >= 0.5)
    for rank, head in enumerate(strong_order):
        evidence_group[head] = rank % n_groups
    weak_order = np.flatnonzero(head_strengths[0] < 0.5)
    for rank, head in enumerate(weak_order):
        evidence_group[head] = rank % n_groups

    # ------------------------------------------------------------------
    # Blocks.
    # ------------------------------------------------------------------
    blocks: List[BlockParams] = []
    for layer in range(config.n_layers):
        wq = rng.normal(0, background_noise, size=(d_model, d_model))
        wk = rng.normal(0, background_noise, size=(d_model, d_model))
        # The value path is cleaner than the routing path (trained V/O
        # projections are lower-rank): less background noise, so a
        # head's output magnitude is governed by its evidence writes —
        # the property cumulative head importance relies on.
        wv = rng.normal(0, 0.3 * background_noise, size=(d_model, d_model))
        wo = rng.normal(0, 0.3 * background_noise, size=(d_model, d_model))

        for head in range(config.n_heads):
            strength = head_strengths[layer, head]
            block = slice(head * head_dim, (head + 1) * head_dim)
            gain = attention_gain * strength * np.sqrt(head_dim)
            if head_is_local[layer, head]:
                # Local head: queries and keys both carry the position
                # code, so scores peak at small query-key distance.
                beta = np.sqrt(2.0 * gain / POSITION_DIMS)
                for offset in range(POSITION_DIMS):
                    wq[p_start + offset, block.start + offset] += beta
                    wk[p_start + offset, block.start + offset] += beta
            else:
                # Content head: all queries ~ q0 (constant feature);
                # keys of salient tokens align with q0 => scores ~
                # gain * salience.
                q0 = rng.normal(size=head_dim)
                q0 /= np.linalg.norm(q0)
                wq[CONST_DIM, block] += q0 * np.sqrt(gain)
                wk[SALIENCE_DIM, block] += q0 * np.sqrt(gain)
            # Values carry (a group of) the evidence block into the head;
            # the output projection writes it back into the residual
            # evidence block.  Weak heads write almost nothing, which is
            # exactly what makes their |attention_out| small and lets
            # cumulative head importance find them.
            n_slots = min(e_dim, head_dim)
            gv = value_gain * strength
            if e_dim <= 4:
                # Few evidence slots (classification): every strong head
                # carries all of them, but through a per-head rotation of
                # the evidence plane — heads agree on average yet play
                # distinct roles, so pruning past the weak ones rotates
                # the aggregate feature and costs accuracy (the Fig. 21
                # head-curve cliff).
                theta = rng.normal(0.0, np.deg2rad(18.0))
                cos_t, sin_t = np.cos(theta), np.sin(theta)
                for s0 in range(0, n_slots - 1, 2):
                    s1 = s0 + 1
                    wv[EVIDENCE_START + s0, block.start + s0] += gv * cos_t
                    wv[EVIDENCE_START + s0, block.start + s1] += gv * sin_t
                    wv[EVIDENCE_START + s1, block.start + s0] -= gv * sin_t
                    wv[EVIDENCE_START + s1, block.start + s1] += gv * cos_t
                    wo[block.start + s0, EVIDENCE_START + s0] += gv
                    wo[block.start + s1, EVIDENCE_START + s1] += gv
                if n_slots % 2 == 1:
                    last = n_slots - 1
                    wv[EVIDENCE_START + last, block.start + last] += gv
                    wo[block.start + last, EVIDENCE_START + last] += gv
            else:
                # Many evidence slots (LM topic signatures): strong heads
                # specialise on slot groups instead.
                for slot in range(n_slots):
                    if strength >= 0.5 and slot % n_groups != evidence_group[head]:
                        continue  # specialised: this head skips other groups
                    wv[EVIDENCE_START + slot, block.start + slot] += gv
                    wo[block.start + slot, EVIDENCE_START + slot] += gv
            # Preserve the routing features through the value path a
            # little so deeper layers still see salience structure
            # (scaled by strength: quiet heads carry nothing).
            if head_dim > n_slots + 1:
                wv[CONST_DIM, block.start + n_slots] += 0.3 * strength
                wo[block.start + n_slots, CONST_DIM] += 0.1 * strength
                wv[SALIENCE_DIM, block.start + n_slots + 1] += 0.3 * strength
                wo[block.start + n_slots + 1, SALIENCE_DIM] += 0.1 * strength

        attn = AttentionWeights(
            wq=wq, wk=wk, wv=wv, wo=wo,
            bq=np.zeros(d_model), bk=np.zeros(d_model),
            bv=np.zeros(d_model), bo=np.zeros(d_model),
        )
        # FFN: a gentle random mixing; small output scale keeps the
        # residual stream (and its semantic features) dominant, the way
        # trained post-LN transformers behave.
        ffn_w1 = rng.normal(0, background_noise, size=(d_model, config.d_ff))
        ffn_w2 = rng.normal(0, background_noise, size=(config.d_ff, d_model))
        blocks.append(
            BlockParams(
                attn=attn,
                ln1_gamma=np.ones(d_model), ln1_beta=np.zeros(d_model),
                ffn_w1=ffn_w1, ffn_b1=np.zeros(config.d_ff),
                ffn_w2=ffn_w2, ffn_b2=np.zeros(d_model),
                ln2_gamma=np.ones(d_model), ln2_beta=np.zeros(d_model),
            )
        )

    params = ModelParams(
        token_embedding=token_embedding,
        pos_embedding=pos_embedding,
        blocks=blocks,
    )
    info = SemanticModelInfo(
        head_strengths=head_strengths, spec=spec, head_is_local=head_is_local
    )
    return params, info
