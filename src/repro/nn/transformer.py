"""Transformer blocks, encoder (BERT-style) and decoder (GPT-style) models.

The model follows the paper's Fig. 3: per block, hidden states go through
the QKV FCs and attention, a residual + LayerNorm, a two-FC feed-forward
network, and another residual + LayerNorm.  BERT runs only the
summarization stage; GPT runs summarization followed by token-by-token
generation against a KV cache.

Attention execution is pluggable through :class:`AttentionExecutor` so the
SpAtten pipeline (:mod:`repro.core.pipeline`) can replace the dense inner
computation with cascade-pruned, progressively-quantized attention while
the surrounding model code stays identical.  Crucially, when an executor
prunes tokens the *model* drops those rows from the residual stream, which
is exactly how SpAtten saves FFN computation too (Section III-A: "Token
pruning can reduce the computation and memory access of both attention,
and also FC layers outside attention").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..config import ModelConfig
from .attention import AttentionRecord, AttentionWeights, MultiHeadAttention
from .functional import gelu, layer_norm, linear, softmax
from .kv_cache import KVCache

__all__ = [
    "BlockParams",
    "ModelParams",
    "LayerExecution",
    "AttentionExecutor",
    "DenseExecutor",
    "EncodeResult",
    "GenerationResult",
    "PrefillState",
    "TransformerModel",
]


@dataclass
class BlockParams:
    """Parameters of one transformer block."""

    attn: AttentionWeights
    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray
    ffn_w1: np.ndarray
    ffn_b1: np.ndarray
    ffn_w2: np.ndarray
    ffn_b2: np.ndarray
    ln2_gamma: np.ndarray
    ln2_beta: np.ndarray

    @staticmethod
    def random(d_model: int, d_ff: int, rng: np.random.Generator) -> "BlockParams":
        return BlockParams(
            attn=AttentionWeights.random(d_model, rng),
            ln1_gamma=np.ones(d_model),
            ln1_beta=np.zeros(d_model),
            ffn_w1=rng.normal(0, 1.0 / np.sqrt(d_model), size=(d_model, d_ff)),
            ffn_b1=np.zeros(d_ff),
            ffn_w2=rng.normal(0, 1.0 / np.sqrt(d_ff), size=(d_ff, d_model)),
            ffn_b2=np.zeros(d_model),
            ln2_gamma=np.ones(d_model),
            ln2_beta=np.zeros(d_model),
        )


@dataclass
class ModelParams:
    """All parameters of a transformer model (weights only, no config)."""

    token_embedding: np.ndarray  # [vocab, d_model]
    pos_embedding: np.ndarray  # [max_seq_len, d_model]
    blocks: List[BlockParams]
    lm_head: Optional[np.ndarray] = None  # [d_model, vocab]; None => tied

    def lm_projection(self) -> np.ndarray:
        """Vocabulary projection matrix (tied to embeddings by default)."""
        if self.lm_head is not None:
            return self.lm_head
        return self.token_embedding.T


@dataclass
class LayerExecution:
    """Result of executing the attention part of one block.

    Attributes:
        output: ``attention_out`` rows for the *surviving* queries,
            ``[L_kept, d_model]``.
        record: instrumentation (probabilities, head outputs, ids).
        kept_query_rows: indices into the incoming hidden-state rows that
            survive this layer's token pruning.  The model subsets the
            residual stream with these before the residual add, which is
            what propagates token pruning to the FFN and later layers.
    """

    output: np.ndarray
    record: AttentionRecord
    kept_query_rows: np.ndarray


class AttentionExecutor:
    """Strategy interface for running attention inside the model.

    Implementations own all sequence-level state (KV caches, cumulative
    importance scores) between :meth:`begin_sequence` calls.  The
    serving engine additionally introspects executors through
    :meth:`kv_lengths`, :attr:`n_live_heads`, and
    :attr:`evicted_kv_tokens`; the defaults below describe a cacheless,
    unpruned executor, so custom implementations only override what
    they track.
    """

    def begin_sequence(self, model: "TransformerModel") -> None:
        raise NotImplementedError

    def begin_prefill(self, prompt_len: int) -> None:
        """Hint that summarization will arrive in chunks of a known total.

        Called by :meth:`TransformerModel.prefill_begin` before the
        first chunk.  Incremental executors use the total to keep
        chunked numerics bit-identical to the monolithic pass (see
        :meth:`DenseExecutor.begin_prefill`); the default ignores it.
        """

    @property
    def packed_decode_style(self) -> str:
        """How the packed decode backend may drive this executor.

        * ``"none"`` — no packed support; the backend falls back to a
          per-sequence :meth:`run_layer` call (full looped semantics).
        * ``"dense"`` — the executor's only per-layer decode state is a
          :class:`~repro.nn.kv_cache.LayerKVCache`; the backend appends
          the new column via :meth:`decode_kv_append` and runs the whole
          attention core (scores, softmax, A·V) centrally over the
          batch.
        * ``"custom"`` — the backend supplies full-width projections and
          the executor runs its own per-sequence core via
          :meth:`decode_attend_packed` (pruning decisions, progressive
          quantization, trace accounting).

        Whatever the style, the packed result must be bit-identical to
        the looped :meth:`run_layer` path — the backend only batches
        operations whose grouping provably does not change the floats.
        (Under a non-exact :class:`~repro.nn.numerics.NumericsPolicy`
        the backend instead targets the policy's declared accuracy
        budget; the style contract is unchanged.)
        """
        return "none"

    @property
    def numerics(self):
        """The numerics ladder tier this executor stores KV state at.

        Defaults to the exact (fp64, bit-identical) policy; executors
        that accept a ``numerics`` argument override this with the
        resolved policy so the serving engine and backend can assert
        a consistent tier across the whole stack.
        """
        from .numerics import EXACT

        return EXACT

    def decode_kv_append(
        self,
        layer_idx: int,
        k_new: np.ndarray,
        v_new: np.ndarray,
        positions: np.ndarray,
    ):
        """Append one decode column (``[h, 1, D]``) for a ``"dense"``
        executor and return the layer's :class:`LayerKVCache`."""
        raise NotImplementedError

    def decode_kv_cache(self, layer_idx: int):
        """The layer's :class:`~repro.nn.kv_cache.LayerKVCache` without
        appending (``"dense"`` style only).

        The numerics-policy fast path appends centrally — batching the
        quantization of a whole step's new columns — so it needs the
        bare cache rather than the append-and-return of
        :meth:`decode_kv_append`.
        """
        raise NotImplementedError

    def decode_attend_packed(
        self,
        layer_idx: int,
        model: "TransformerModel",
        q_full: np.ndarray,
        k_full: np.ndarray,
        v_full: np.ndarray,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Per-sequence decode core for a ``"custom"`` executor.

        Receives the sequence's full-width projected ``q/k/v`` rows
        (``[h, 1, D]`` each, bit-identical to what projecting this row
        alone would produce) and returns the *merged pre-projection*
        attention features ``[1, n_heads * head_dim]`` — the backend
        applies the output FC over the whole batch in one matmul.
        """
        raise NotImplementedError

    @property
    def supports_incremental_prefill(self) -> bool:
        """Whether summarization may run chunk-by-chunk, bit-identically.

        Incremental executors accept successive ``run_layer(...,
        "summarize")`` calls whose rows extend the same sequence: each
        chunk appends its K/V columns to the per-layer caches and
        attends causally against everything cached so far, so the
        chunked pass commits exactly the same arithmetic as a
        monolithic one.  Executors whose summarization is a
        whole-sentence decision — cascade token pruning needs every
        token's accumulated importance before it prunes — return
        ``False``, and :meth:`TransformerModel.prefill_chunk_batch`
        defers their execution to the final chunk instead.
        """
        return True

    def kv_lengths(self) -> List[int]:
        """Per-layer live KV column counts (serving pool bookkeeping)."""
        return []

    @property
    def n_live_heads(self) -> int:
        """Heads still computing (serving cost model)."""
        return 0

    @property
    def evicted_kv_tokens(self) -> int:
        """Cumulative KV columns evicted by pruning (serving stats)."""
        return 0

    def run_layer(
        self,
        layer_idx: int,
        model: "TransformerModel",
        x: np.ndarray,
        positions: np.ndarray,
        stage: str,
        projected=None,
    ) -> LayerExecution:
        """Execute attention of block ``layer_idx`` on hidden rows ``x``.

        Args:
            layer_idx: block index.
            model: owning model (for weights and config).
            x: ``[L, d_model]`` hidden rows entering the block.
            positions: absolute sentence positions of each row of ``x``.
            stage: ``"summarize"`` (batch over the whole remaining
                sentence) or ``"decode"`` (single new token against the
                KV cache).
            projected: optional pre-computed ``(q, k, v)`` full-width
                projections of ``x`` (``[h, L, D]`` each), produced by
                the packed backend's batched projection.  Only handed to
                executors whose :attr:`packed_decode_style` supports it;
                the kwarg is omitted entirely otherwise, so legacy
                five-argument overrides keep working.
        """
        raise NotImplementedError


class DenseExecutor(AttentionExecutor):
    """Reference dense attention: no pruning, no quantization.

    Args:
        kv_page_tokens: KV-cache growth quantum in columns (aligned with
            the serving pool's page size; see
            :class:`~repro.nn.kv_cache.LayerKVCache`).
        kv_preallocate: grow KV buffers by amortized doubling (default).
            ``False`` restores concatenate-per-append storage — the
            pre-packed-backend hot path, kept as the baseline for
            ``benchmarks/bench_decode_step.py``.
        numerics: :class:`~repro.nn.numerics.NumericsPolicy` (or tier
            name) selecting the KV storage representation — fp64 under
            ``exact`` (default, bit-identical), fp32 planes or int8
            codes with per-row scales otherwise.  Storage only: the
            executor's own compute stays the fp64 oracle math; the
            packed backend supplies the policy's fast decode core.
    """

    def __init__(
        self,
        kv_page_tokens: int = 16,
        kv_preallocate: bool = True,
        numerics=None,
    ) -> None:
        from .numerics import resolve_numerics

        self._cache: Optional[KVCache] = None
        self._n_heads = 0
        self._prefill_total = 0
        self._kv_page_tokens = kv_page_tokens
        self._kv_preallocate = kv_preallocate
        self._numerics = resolve_numerics(numerics)

    @property
    def numerics(self):
        return self._numerics

    def begin_sequence(self, model: "TransformerModel") -> None:
        cfg = model.config
        self._n_heads = cfg.n_heads
        self._prefill_total = 0
        if cfg.causal:
            policy = self._numerics
            self._cache = KVCache(
                cfg.n_layers, cfg.n_heads, cfg.head_dim,
                bytes_per_element=policy.storage_bytes_per_element(
                    cfg.bytes_per_element
                ),
                page_tokens=self._kv_page_tokens,
                preallocate=self._kv_preallocate,
                dtype=policy.kv_dtype,
            )
        else:
            self._cache = None

    def begin_prefill(self, prompt_len: int) -> None:
        """Record the full prompt width for chunked summarization.

        While a prompt arrives in chunks, each layer's K/V are padded
        out to the final prompt width before attention (the causal mask
        excludes the padded columns).  The softmax denominator then
        sums over exactly the same columns — in the same pairwise
        grouping — as the monolithic pass, which is what makes chunked
        prefill bit-identical rather than merely close.  Capacity for
        the whole prompt is reserved up front so chunked appends never
        reallocate mid-prefill.
        """
        self._prefill_total = int(prompt_len)
        if self._cache is not None:
            self._cache.reserve(self._prefill_total)

    def kv_lengths(self) -> List[int]:
        """Per-layer live KV column counts (serving pool bookkeeping)."""
        return self._cache.lengths() if self._cache is not None else []

    @property
    def n_live_heads(self) -> int:
        """Heads still computing (dense attention never prunes any)."""
        return self._n_heads

    @property
    def packed_decode_style(self) -> str:
        """Cache-only state: the backend may run the core centrally."""
        return "dense" if self._cache is not None else "none"

    def decode_kv_append(
        self,
        layer_idx: int,
        k_new: np.ndarray,
        v_new: np.ndarray,
        positions: np.ndarray,
    ):
        """Append the decode column exactly as the looped path would."""
        layer_cache = self._cache[layer_idx]
        layer_cache.append(k_new, v_new, positions)
        return layer_cache

    def decode_kv_cache(self, layer_idx: int):
        """Bare layer cache for the policy path's central append."""
        return self._cache[layer_idx]

    def run_layer(
        self,
        layer_idx: int,
        model: "TransformerModel",
        x: np.ndarray,
        positions: np.ndarray,
        stage: str,
        projected=None,
    ) -> LayerExecution:
        attn = model.attention(layer_idx)
        cfg = model.config
        if not cfg.causal:
            out, record = attn.forward(x, causal=False)
            record.key_token_ids = positions.copy()
            record.query_token_ids = positions.copy()
            return LayerExecution(out, record, np.arange(len(x)))

        # Causal model: maintain the KV cache across summarize + decode.
        layer_cache = self._cache[layer_idx]
        if projected is not None:
            q, k_new, v_new = projected
        else:
            q = None  # forward() projects the queries itself
            k_new, v_new = attn.project_kv(x)
        layer_cache.append(k_new, v_new, positions)
        if stage == "summarize":
            n_cached = len(layer_cache)
            if n_cached < self._prefill_total:
                # Mid-chunked-prefill: pad K/V to the final prompt
                # width (the causal mask excludes the extra columns) so
                # the softmax normalizes over the same columns as the
                # monolithic pass — see begin_prefill.  With
                # preallocated buffers this view costs no copy.
                kv = layer_cache.padded_to(self._prefill_total)
            else:
                kv = layer_cache.as_tuple()
            out, record = attn.forward(
                x, causal=True, kv=kv, query_offset=int(positions[0]), q=q,
            )
            record.probs = record.probs[:, :, :n_cached]
        else:
            out, record = attn.forward(
                x, causal=False, kv=layer_cache.as_tuple(), q=q
            )
        record.key_token_ids = layer_cache.token_ids.copy()
        record.query_token_ids = positions.copy()
        return LayerExecution(out, record, np.arange(len(x)))


@dataclass
class EncodeResult:
    """Output of the summarization stage."""

    hidden: np.ndarray  # [L_survivors, d_model]
    positions: np.ndarray  # original positions of surviving rows
    records: List[AttentionRecord]

    def pooled(self, strategy: str = "cls") -> np.ndarray:
        """Sentence feature for classification heads.

        ``cls`` returns the hidden state of original position 0 (which
        cascade pruning always protects); ``mean`` averages survivors.
        """
        if strategy == "cls":
            matches = np.flatnonzero(self.positions == 0)
            if len(matches) == 0:
                raise ValueError("CLS token was pruned; use mean pooling")
            return self.hidden[matches[0]]
        if strategy == "mean":
            return self.hidden.mean(axis=0)
        raise ValueError(f"unknown pooling strategy: {strategy}")


@dataclass
class GenerationResult:
    """Output of the generation stage."""

    token_ids: List[int]
    logits: List[np.ndarray]
    step_records: List[List[AttentionRecord]] = field(default_factory=list)

    @property
    def n_generated(self) -> int:
        return len(self.token_ids)


@dataclass
class PrefillState:
    """Resumable progress of one prompt's chunked prefill.

    Produced by :meth:`TransformerModel.prefill_begin` and advanced by
    :meth:`TransformerModel.prefill_chunk` /
    :meth:`TransformerModel.prefill_chunk_batch`.  ``n_committed``
    counts prompt tokens whose chunk has been scheduled; once every
    token has committed, ``logits`` holds the next-token logits — bit
    identical to what a monolithic :meth:`TransformerModel.prefill`
    call would have returned for the same executor type.
    """

    executor: AttentionExecutor
    prompt_ids: np.ndarray
    n_committed: int = 0
    logits: Optional[np.ndarray] = None

    @property
    def prompt_len(self) -> int:
        return len(self.prompt_ids)

    @property
    def n_remaining(self) -> int:
        return self.prompt_len - self.n_committed

    @property
    def done(self) -> bool:
        return self.n_committed >= self.prompt_len

    def next_span(self, max_tokens: int) -> tuple:
        """Token span ``[start, end)`` the next chunk would commit.

        Spans always cover at least two rows, and a would-be trailing
        single-token chunk is absorbed into its predecessor (unless the
        whole prompt is one token): a ``[1, d_model]`` matmul takes a
        different BLAS kernel (GEMV) than the multi-row GEMM the
        monolithic pass uses, which would break bit-identity.  The
        serving cost model charges chunks over exactly these spans.
        """
        start = self.n_committed
        end = min(start + max(2, max_tokens), self.prompt_len)
        if self.prompt_len - end == 1:
            end = self.prompt_len
        return start, end


class TransformerModel:
    """A BERT- or GPT-style transformer over NumPy arrays."""

    def __init__(self, config: ModelConfig, params: ModelParams):
        if len(params.blocks) != config.n_layers:
            raise ValueError(
                f"params has {len(params.blocks)} blocks, config expects "
                f"{config.n_layers}"
            )
        if params.token_embedding.shape != (config.vocab_size, config.d_model):
            raise ValueError("token embedding shape mismatch")
        self.config = config
        self.params = params
        self._attentions = [
            MultiHeadAttention(bp.attn, config.n_heads) for bp in params.blocks
        ]

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def attention(self, layer_idx: int) -> MultiHeadAttention:
        return self._attentions[layer_idx]

    def block(self, layer_idx: int) -> BlockParams:
        return self.params.blocks[layer_idx]

    def embed(self, token_ids: Sequence[int], position_offset: int = 0) -> np.ndarray:
        """Token + positional embedding lookup."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim != 1:
            raise ValueError("token_ids must be a 1-D sequence")
        if len(token_ids) == 0:
            raise ValueError(
                "cannot embed an empty token sequence: there is no position "
                "to look up (prompts must contain at least one token)"
            )
        if np.any(token_ids < 0) or np.any(token_ids >= self.config.vocab_size):
            raise ValueError("token id out of vocabulary range")
        positions = np.arange(len(token_ids)) + position_offset
        if positions[-1] >= self.config.max_seq_len:
            raise ValueError(
                f"sequence exceeds max_seq_len={self.config.max_seq_len}"
            )
        return (
            self.params.token_embedding[token_ids]
            + self.params.pos_embedding[positions]
        )

    def _ffn(self, layer_idx: int, x: np.ndarray) -> np.ndarray:
        bp = self.block(layer_idx)
        hidden = gelu(linear(x, bp.ffn_w1, bp.ffn_b1))
        return linear(hidden, bp.ffn_w2, bp.ffn_b2)

    def _run_block(
        self,
        layer_idx: int,
        x: np.ndarray,
        positions: np.ndarray,
        executor: AttentionExecutor,
        stage: str,
    ):
        """One block: attention (possibly pruned) + FFN with residuals."""
        bp = self.block(layer_idx)
        execution = executor.run_layer(layer_idx, self, x, positions, stage)
        kept = execution.kept_query_rows
        x = x[kept]
        positions = positions[kept]
        x = layer_norm(x + execution.output, bp.ln1_gamma, bp.ln1_beta)
        x = layer_norm(x + self._ffn(layer_idx, x), bp.ln2_gamma, bp.ln2_beta)
        return x, positions, execution.record

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def encode(
        self,
        token_ids: Sequence[int],
        executor: Optional[AttentionExecutor] = None,
    ) -> EncodeResult:
        """Summarization stage over a whole sentence (Fig. 3 left)."""
        executor = executor or DenseExecutor()
        executor.begin_sequence(self)
        x = self.embed(token_ids)
        positions = np.arange(len(token_ids))
        records: List[AttentionRecord] = []
        for layer_idx in range(self.config.n_layers):
            x, positions, record = self._run_block(
                layer_idx, x, positions, executor, stage="summarize"
            )
            records.append(record)
        return EncodeResult(hidden=x, positions=positions, records=records)

    def lm_logits(self, hidden: np.ndarray) -> np.ndarray:
        """Language-model head over hidden rows."""
        return hidden @ self.params.lm_projection()

    def prefill(
        self,
        prompt_ids: Sequence[int],
        executor: Optional[AttentionExecutor] = None,
    ) -> np.ndarray:
        """Summarize a prompt and return the next-token logits.

        This is the first half of :meth:`generate`, split out so the
        serving engine (:mod:`repro.serving`) can admit a request —
        populating the executor's KV cache — without committing to a
        fixed number of decode steps up front.  For latency-friendly
        scheduling under load, the prompt can instead be committed in
        chunks: see :meth:`prefill_begin` / :meth:`prefill_chunk`.
        """
        if not self.config.causal:
            raise ValueError("prefill() requires a causal (GPT-style) model")
        executor = executor or DenseExecutor()
        executor.begin_sequence(self)
        return self._summarize_rows(prompt_ids, executor)

    def _summarize_rows(
        self, prompt_ids: Sequence[int], executor: AttentionExecutor
    ) -> np.ndarray:
        """Monolithic summarization pass; returns next-token logits."""
        x = self.embed(prompt_ids)
        positions = np.arange(len(prompt_ids))
        for layer_idx in range(self.config.n_layers):
            x, positions, _ = self._run_block(
                layer_idx, x, positions, executor, stage="summarize"
            )
        return self.lm_logits(x[-1:])[0]

    def prefill_begin(
        self,
        prompt_ids: Sequence[int],
        executor: Optional[AttentionExecutor] = None,
    ) -> PrefillState:
        """Open a resumable prefill over ``prompt_ids``.

        The returned :class:`PrefillState` is advanced with
        :meth:`prefill_chunk` (or, across many requests at once,
        :meth:`prefill_chunk_batch`) until ``state.done``; the final
        chunk yields logits bit-identical to a monolithic
        :meth:`prefill`.  Splitting a prompt this way lets the serving
        engine interleave prompt summarization with live decode steps
        instead of stalling the whole batch for the prompt's duration.
        """
        if not self.config.causal:
            raise ValueError("prefill_begin() requires a causal model")
        prompt_ids = np.asarray(prompt_ids, dtype=np.int64)
        if prompt_ids.ndim != 1 or len(prompt_ids) == 0:
            raise ValueError("prompt_ids must be a non-empty 1-D sequence")
        executor = executor or DenseExecutor()
        executor.begin_sequence(self)
        executor.begin_prefill(len(prompt_ids))
        return PrefillState(executor=executor, prompt_ids=prompt_ids)

    def prefill_chunk(
        self, state: PrefillState, max_tokens: int
    ) -> Optional[np.ndarray]:
        """Commit up to ``max_tokens`` more prompt tokens of one prefill.

        Returns the next-token logits when this chunk completes the
        prompt, else ``None``.
        """
        return self.prefill_chunk_batch([state], max_tokens)[0]

    def prefill_chunk_batch(
        self,
        states: Sequence[PrefillState],
        max_tokens: int,
        backend=None,
    ) -> List[Optional[np.ndarray]]:
        """One prefill chunk for each of several in-flight prompts.

        Like :meth:`decode_step_batch`, the chunk rows of every
        incremental executor run as one batch: residual/LayerNorm
        arithmetic and the FFN matmuls execute over the concatenated
        ``[sum_chunk_lens, d_model]`` rows while attention runs per
        sequence against each sequence's own KV cache.  Row-wise
        batching keeps every sequence's arithmetic bit-identical to a
        solo :meth:`prefill`.  With a
        :class:`~repro.nn.batched_attention.PackedDecodeBackend`, the
        per-layer Q/K/V projections of every incremental chunk
        additionally run as one fused matmul over the concatenated rows
        (bit-identical: multi-row GEMMs are row- and column-block
        consistent; see :mod:`repro.nn.batched_attention`).

        Executors that cannot summarize incrementally (cascade token
        pruning decides over the whole sentence — see
        :attr:`AttentionExecutor.supports_incremental_prefill`) only
        advance their committed-token counter per chunk; their full
        summarization executes when the final chunk commits, which
        preserves bit-exactness while the serving cost model still
        charges the work chunk by chunk.

        Returns one entry per state: the next-token logits for states
        whose prompt completed this call, else ``None``.
        """
        if max_tokens < 1:
            raise ValueError("max_tokens must be >= 1")
        for state in states:
            if state.done:
                raise ValueError("prefill already complete for this state")
        results: List[Optional[np.ndarray]] = [None] * len(states)
        incremental = [
            i for i, s in enumerate(states)
            if s.executor.supports_incremental_prefill
        ]
        deferred = [
            i for i, s in enumerate(states)
            if not s.executor.supports_incremental_prefill
        ]

        if incremental:
            rows: dict = {}
            row_positions: dict = {}
            for i in incremental:
                s = states[i]
                start, end = s.next_span(max_tokens)
                rows[i] = self.embed(s.prompt_ids[start:end],
                                     position_offset=start)
                row_positions[i] = np.arange(start, end)
            for layer_idx in range(self.config.n_layers):
                bp = self.block(layer_idx)
                projected = (
                    backend.project_chunk_rows(
                        self, layer_idx,
                        {i: rows[i] for i in incremental},
                        [states[i].executor for i in incremental],
                        incremental,
                    )
                    if backend is not None
                    else {}
                )
                outputs = []
                for i in incremental:
                    kwargs = (
                        {"projected": projected[i]} if i in projected else {}
                    )
                    execution = states[i].executor.run_layer(
                        layer_idx, self, rows[i], row_positions[i],
                        "summarize", **kwargs,
                    )
                    kept = execution.kept_query_rows
                    rows[i] = rows[i][kept]
                    row_positions[i] = row_positions[i][kept]
                    outputs.append(execution.output)
                x = np.concatenate([rows[i] for i in incremental], axis=0)
                attn_out = np.concatenate(outputs, axis=0)
                x = layer_norm(x + attn_out, bp.ln1_gamma, bp.ln1_beta)
                x = layer_norm(
                    x + self._ffn(layer_idx, x), bp.ln2_gamma, bp.ln2_beta
                )
                offset = 0
                for i in incremental:
                    n = len(rows[i])
                    rows[i] = x[offset:offset + n]
                    offset += n
            for i in incremental:
                s = states[i]
                s.n_committed = s.next_span(max_tokens)[1]
                if s.done:
                    s.logits = self.lm_logits(rows[i][-1:])[0]
                    results[i] = s.logits

        for i in deferred:
            s = states[i]
            s.n_committed = s.next_span(max_tokens)[1]
            if s.done:
                # Whole-sentence execution on the final chunk; the
                # executor was already begun by prefill_begin().
                s.logits = self._summarize_rows(s.prompt_ids, s.executor)
                results[i] = s.logits
        return results

    def decode_step_batch(
        self,
        token_ids: Sequence[int],
        positions: Sequence[int],
        executors: Sequence[AttentionExecutor],
        backend=None,
    ) -> np.ndarray:
        """One decode step across a batch of independent sequences.

        Continuous batching runs many sequences' decode steps together:
        the embedding gather, the residual/LayerNorm arithmetic, the FFN
        matmuls, and the LM head all execute as single batch-level
        operations over ``[B, d_model]``.  Returns ``[B, vocab]``
        logits.

        Without a ``backend`` (the **looped** path, kept as the
        bit-identity oracle) the attention core runs per sequence via
        :meth:`AttentionExecutor.run_layer`, issuing ``B × n_layers``
        single-row projections per step.  With a
        :class:`~repro.nn.batched_attention.PackedDecodeBackend` (the
        **packed** path) each layer's Q/K/V and output projections run
        as single fused batch-level matmuls and the dense attention core
        is executed centrally over preallocated KV views — bit-identical
        logits, a fraction of the interpreter and copy traffic.

        Each executor must already hold a prefilled sequence (see
        :meth:`prefill`); sequence ``i`` decodes ``token_ids[i]`` at
        absolute position ``positions[i]``.
        """
        if not self.config.causal:
            raise ValueError("decode_step_batch() requires a causal model")
        token_ids = np.asarray(token_ids, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        if not (len(token_ids) == len(positions) == len(executors)):
            raise ValueError("token_ids, positions, executors must align")
        if len(token_ids) == 0:
            raise ValueError("decode_step_batch needs at least one sequence")
        if np.any(token_ids < 0) or np.any(token_ids >= self.config.vocab_size):
            raise ValueError("token id out of vocabulary range")
        if np.any(positions >= self.config.max_seq_len):
            raise ValueError(
                f"position exceeds max_seq_len={self.config.max_seq_len}"
            )
        if backend is not None and not backend.policy.is_exact:
            # Non-exact numerics tier: the backend owns the whole step
            # (compute-dtype layer stack + arena-packed attention core);
            # see repro.nn.numerics for the ladder contract.
            return backend.decode_step_policy(
                self, token_ids, positions, executors
            )
        x = (
            self.params.token_embedding[token_ids]
            + self.params.pos_embedding[positions]
        )
        for layer_idx in range(self.config.n_layers):
            bp = self.block(layer_idx)
            if backend is not None:
                attn_out = backend.decode_layer(
                    self, layer_idx, x, positions, executors
                )
            else:
                attn_out = np.concatenate(
                    [
                        executor.run_layer(
                            layer_idx, self, x[i : i + 1],
                            positions[i : i + 1], "decode",
                        ).output
                        for i, executor in enumerate(executors)
                    ],
                    axis=0,
                )
            x = layer_norm(x + attn_out, bp.ln1_gamma, bp.ln1_beta)
            x = layer_norm(x + self._ffn(layer_idx, x), bp.ln2_gamma, bp.ln2_beta)
        return self.lm_logits(x)

    def generate(
        self,
        prompt_ids: Sequence[int],
        n_new_tokens: int,
        executor: Optional[AttentionExecutor] = None,
        sampler: Optional[Callable[[np.ndarray], int]] = None,
        collect_records: bool = False,
    ) -> GenerationResult:
        """Summarize the prompt, then generate tokens one at a time.

        Mirrors the paper's GPT-2 benchmark setting: a long prompt (992
        tokens in the paper) followed by iterative single-token decode
        steps against the growing KV cache.

        Args:
            prompt_ids: prompt token ids.
            n_new_tokens: number of decode iterations.
            executor: attention strategy (dense by default).
            sampler: maps final-token logits to the next token id
                (greedy argmax by default).
            collect_records: keep per-step attention records (memory
                heavy for long generations).
        """
        if not self.config.causal:
            raise ValueError("generate() requires a causal (GPT-style) model")
        if sampler is None:
            sampler = lambda logits: int(np.argmax(logits))
        executor = executor or DenseExecutor()

        # Summarization stage over the prompt.
        logits = self.prefill(prompt_ids, executor)

        result = GenerationResult(token_ids=[], logits=[])
        next_position = len(prompt_ids)
        for _ in range(n_new_tokens):
            next_id = sampler(logits)
            result.token_ids.append(next_id)
            result.logits.append(logits)
            # Decode stage: one token through every block.
            x = self.embed([next_id], position_offset=next_position)
            positions = np.array([next_position])
            step_records: List[AttentionRecord] = []
            for layer_idx in range(self.config.n_layers):
                x, positions, record = self._run_block(
                    layer_idx, x, positions, executor, stage="decode"
                )
                if collect_records:
                    step_records.append(record)
            if collect_records:
                result.step_records.append(step_records)
            logits = self.lm_logits(x)[0]
            next_position += 1
        return result

    def next_token_distribution(
        self,
        prompt_ids: Sequence[int],
        executor: Optional[AttentionExecutor] = None,
    ) -> np.ndarray:
        """Probability distribution of the next token after the prompt.

        This is the LM-fidelity probe: comparing it between dense and
        SpAtten executors quantifies the quality impact of pruning and
        quantization (used for the Fig. 21 trade-off curves).
        """
        if not self.config.causal:
            raise ValueError("requires a causal model")
        return softmax(self.prefill(prompt_ids, executor))
