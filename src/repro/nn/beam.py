"""Beam-search decoding (paper Section V-B, "Comparisons with CPUs and
GPUs"): "our techniques can also accelerate the Beam Search case
because when a token (and its K, V) is pruned, it will not be used by
any beams".

This is a reference implementation over the executor API: every
candidate continuation is scored with a fresh executor instance, so
cascade pruning applies to each hypothesis exactly as it does to greedy
decoding, and a token pruned from the shared prompt is absent from
every beam's attention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .transformer import AttentionExecutor, TransformerModel

__all__ = ["BeamHypothesis", "beam_search"]


@dataclass
class BeamHypothesis:
    """One finished beam."""

    token_ids: List[int]
    log_probability: float

    def score(self, length_penalty: float) -> float:
        """Length-normalised score (GNMT-style penalty)."""
        length = max(len(self.token_ids), 1)
        return self.log_probability / length**length_penalty


def beam_search(
    model: TransformerModel,
    prompt_ids: Sequence[int],
    n_new_tokens: int,
    beam_width: int = 4,
    executor_factory: Optional[Callable[[], AttentionExecutor]] = None,
    length_penalty: float = 0.0,
    candidates_per_beam: Optional[int] = None,
) -> List[BeamHypothesis]:
    """Beam-search continuation of ``prompt_ids``.

    Args:
        model: a causal model.
        prompt_ids: the shared prompt.
        n_new_tokens: continuation length.
        beam_width: live hypotheses kept per step.
        executor_factory: builds the attention executor used to score a
            hypothesis (``None`` = dense attention).  A SpAtten executor
            here makes every beam run under cascade pruning.
        length_penalty: exponent for length normalisation at the end.
        candidates_per_beam: expansions considered per beam per step
            (defaults to ``beam_width``).

    Returns:
        Hypotheses sorted best-first by normalised score.
    """
    if not model.config.causal:
        raise ValueError("beam search requires a causal model")
    if beam_width < 1:
        raise ValueError("beam_width must be >= 1")
    if n_new_tokens < 1:
        raise ValueError("n_new_tokens must be >= 1")
    expansions = candidates_per_beam or beam_width
    prompt = list(int(t) for t in prompt_ids)

    def next_log_probs(sequence: List[int]) -> np.ndarray:
        executor = executor_factory() if executor_factory else None
        dist = model.next_token_distribution(sequence, executor=executor)
        return np.log(dist + 1e-30)

    beams: List[BeamHypothesis] = [BeamHypothesis([], 0.0)]
    for _ in range(n_new_tokens):
        candidates: List[BeamHypothesis] = []
        for beam in beams:
            log_probs = next_log_probs(prompt + beam.token_ids)
            top = np.argsort(log_probs)[::-1][:expansions]
            for token in top:
                candidates.append(
                    BeamHypothesis(
                        beam.token_ids + [int(token)],
                        beam.log_probability + float(log_probs[token]),
                    )
                )
        candidates.sort(key=lambda h: h.log_probability, reverse=True)
        beams = candidates[:beam_width]

    beams.sort(key=lambda h: h.score(length_penalty), reverse=True)
    return beams
