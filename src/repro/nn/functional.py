"""Numerically stable tensor primitives used by the transformer substrate.

These are deliberately small, dependency-free NumPy implementations: the
whole substrate must be auditable because the SpAtten algorithms (token
pruning, progressive quantization) reach *into* the attention computation
and any hidden numerical quirk would contaminate the reproduction.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "layer_norm",
    "gelu",
    "relu",
    "linear",
    "cross_entropy",
    "kl_divergence",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``.

    Matches the row-wise softmax of the paper's Algorithm 1: each row of
    attention scores becomes a probability distribution summing to 1.
    """
    # repro: allow[det-dtype-literal] -- this IS the fp64 oracle softmax
    # every numerics tier is measured against; the policy path has its own
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax along ``axis``."""
    # repro: allow[det-dtype-literal] -- fp64 oracle log-softmax (see above)
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def layer_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Layer normalisation over the last axis."""
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    return gamma * (x - mean) / np.sqrt(var + eps) + beta


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as in BERT/GPT-2)."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray = None) -> np.ndarray:
    """Affine map ``x @ weight + bias`` with an optional bias."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer ``labels`` under ``logits`` rows."""
    logits = np.atleast_2d(logits)
    labels = np.atleast_1d(labels)
    logp = log_softmax(logits, axis=-1)
    return float(-np.mean(logp[np.arange(len(labels)), labels]))


def kl_divergence(p: np.ndarray, q: np.ndarray, eps: float = 1e-12) -> float:
    """KL(p || q) for probability vectors/rows; mean over rows.

    Used as the LM fidelity metric: divergence of the pruned model's
    next-token distribution from the dense model's.
    """
    p = np.clip(np.atleast_2d(p), eps, None)
    q = np.clip(np.atleast_2d(q), eps, None)
    p = p / p.sum(axis=-1, keepdims=True)
    q = q / q.sum(axis=-1, keepdims=True)
    return float(np.mean(np.sum(p * (np.log(p) - np.log(q)), axis=-1)))
