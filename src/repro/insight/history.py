"""Continuous benchmark history: append-only records + regression gate.

Every smoke bench publishes its headline numbers through
:func:`append_history`, which writes one normalized JSON line per run
into ``benchmarks/results/history/<bench>.jsonl``.  Records carry *no*
wall-clock timestamps — two identical runs produce byte-identical
records, and :func:`append_history` skips the append when the new
record equals the last one, so re-running a deterministic bench never
grows the file.  History therefore only accumulates when the numbers
actually move, which is exactly the signal the regression gate needs.

``repro bench-compare`` (and the CI step behind it) reads each history
file and judges the **latest** record against the **median of the
earlier** records per metric.  The threshold is noise-aware: the
allowed relative drift is ``max(rel_tol, 3 * MAD / |median|)`` where
MAD is the median absolute deviation of the earlier values — a metric
that historically wobbles earns proportional slack, a rock-stable one
is held tight.  Only the metric's bad direction fails (a throughput
gain or latency drop is reported as ``improved``, never an error).
A file with a single record is its own baseline and passes.

Record schema (one JSON object per line)::

    {"schema": 1, "bench": "serving_throughput",
     "context": {"mode": "spatten"},
     "metrics": {"throughput_tps": {"value": 123.4, "unit": "tok/s",
                                    "direction": "higher",
                                    "rel_tol": 0.05}}}
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..eval.reporting import Table

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "CompareReport",
    "append_history",
    "compare_all",
    "compare_history",
    "load_history",
    "metric",
]

HISTORY_SCHEMA_VERSION = 1

#: Default allowed relative drift when a metric does not override it.
DEFAULT_REL_TOL = 0.05

_DIRECTIONS = ("higher", "lower")


def metric(
    value: float,
    unit: str,
    direction: str = "higher",
    rel_tol: float = DEFAULT_REL_TOL,
) -> dict:
    """Build one normalized metric entry for :func:`append_history`.

    ``direction`` names the *good* direction: ``higher`` (throughput)
    or ``lower`` (latency).  ``rel_tol`` is the minimum allowed relative
    drift before the gate fails; noisy metrics (wall-clock ratios)
    should pass a larger value.
    """
    if direction not in _DIRECTIONS:
        raise ValueError(
            f"metric direction must be one of {_DIRECTIONS}, "
            f"got {direction!r}"
        )
    if not rel_tol > 0:
        raise ValueError(f"rel_tol must be positive, got {rel_tol}")
    if not math.isfinite(float(value)):
        raise ValueError(f"metric value must be finite, got {value}")
    return {
        "value": float(value),
        "unit": unit,
        "direction": direction,
        "rel_tol": float(rel_tol),
    }


def append_history(
    history_dir, bench: str, metrics: Dict[str, dict],
    context: Optional[dict] = None,
) -> Path:
    """Append one record to ``<history_dir>/<bench>.jsonl``.

    The append is skipped when the record equals the file's last line,
    so deterministic re-runs leave history untouched (and artifact
    uploads byte-identical).  Returns the history file path.
    """
    if not metrics:
        raise ValueError(f"bench {bench!r} published no metrics")
    record = {
        "schema": HISTORY_SCHEMA_VERSION,
        "bench": bench,
        "context": dict(sorted((context or {}).items())),
        "metrics": {name: dict(metrics[name]) for name in sorted(metrics)},
    }
    line = json.dumps(record, sort_keys=True)
    history_dir = Path(history_dir)
    history_dir.mkdir(parents=True, exist_ok=True)
    path = history_dir / f"{bench}.jsonl"
    if path.exists():
        existing = path.read_text().rstrip("\n").splitlines()
        if existing and existing[-1] == line:
            return path
    with path.open("a") as fh:
        fh.write(line + "\n")
    return path


def load_history(path) -> List[dict]:
    """Load one bench's records, oldest first."""
    records = []
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: not a JSON record ({exc})"
            ) from None
        if record.get("schema") != HISTORY_SCHEMA_VERSION:
            raise ValueError(
                f"{path}:{lineno}: history schema "
                f"{record.get('schema')!r} != {HISTORY_SCHEMA_VERSION}"
            )
        records.append(record)
    return records


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def compare_history(records: Sequence[dict]) -> List[dict]:
    """Judge the latest record against the median of the earlier ones.

    Returns one verdict dict per metric in the latest record, with
    ``status`` in ``baseline`` (no earlier data), ``ok``, ``improved``
    (moved the good direction beyond tolerance), or ``regressed``.
    """
    if not records:
        return []
    latest = records[-1]
    earlier = records[:-1]
    verdicts = []
    for name in sorted(latest["metrics"]):
        entry = latest["metrics"][name]
        value = float(entry["value"])
        direction = entry.get("direction", "higher")
        rel_tol = float(entry.get("rel_tol", DEFAULT_REL_TOL))
        baseline_values = [
            float(r["metrics"][name]["value"])
            for r in earlier if name in r.get("metrics", {})
        ]
        verdict = {
            "bench": latest["bench"],
            "metric": name,
            "value": value,
            "unit": entry.get("unit", ""),
            "direction": direction,
            "n_baseline": len(baseline_values),
        }
        if not baseline_values:
            verdict.update(status="baseline", baseline=None, drift=None,
                           tolerance=rel_tol)
            verdicts.append(verdict)
            continue
        baseline = _median(baseline_values)
        # Noise-aware threshold: a metric that historically wobbles by
        # some MAD earns proportional slack beyond its floor rel_tol.
        mad = _median([abs(v - baseline) for v in baseline_values])
        tolerance = rel_tol
        if baseline != 0:
            tolerance = max(rel_tol, 3.0 * mad / abs(baseline))
        drift = (
            (value - baseline) / abs(baseline) if baseline != 0
            else (0.0 if value == 0 else math.inf)
        )
        # Signed drift toward the *bad* direction for this metric.
        bad_drift = -drift if direction == "higher" else drift
        if bad_drift > tolerance:
            status = "regressed"
        elif -bad_drift > tolerance:
            status = "improved"
        else:
            status = "ok"
        verdict.update(
            status=status, baseline=baseline,
            drift=None if math.isinf(drift) else drift,
            tolerance=tolerance,
        )
        verdicts.append(verdict)
    return verdicts


@dataclass
class CompareReport:
    """Regression verdicts across every bench in a history directory."""

    verdicts: List[dict] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[dict]:
        return [v for v in self.verdicts if v["status"] == "regressed"]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions or self.missing else 0

    def to_dict(self) -> dict:
        return {
            "schema": HISTORY_SCHEMA_VERSION,
            "n_metrics": len(self.verdicts),
            "n_regressions": len(self.regressions),
            "missing": list(self.missing),
            "verdicts": [dict(v) for v in self.verdicts],
        }

    def table(self) -> Table:
        t = Table(
            title=(
                f"bench-compare — {len(self.verdicts)} metric(s), "
                f"{len(self.regressions)} regression(s)"
            ),
            headers=["bench", "metric", "value", "baseline", "drift",
                     "tol", "status"],
        )
        for v in self.verdicts:
            drift = v["drift"]
            t.add_row(
                v["bench"], v["metric"],
                f"{v['value']:.4g} {v['unit']}".rstrip(),
                "n/a" if v["baseline"] is None else f"{v['baseline']:.4g}",
                "n/a" if drift is None else f"{drift:+.1%}",
                f"{v['tolerance']:.1%}",
                v["status"],
            )
        for name in self.missing:
            t.add_note(f"MISSING history: {name}")
        if not self.verdicts and not self.missing:
            t.add_note("no history files found")
        return t

    def render(self) -> str:
        return str(self.table())


def compare_all(
    history_dir, benches: Optional[Sequence[str]] = None
) -> CompareReport:
    """Compare every (or the named) bench history under a directory.

    Naming a bench with no history file is an error (``missing``) so a
    gate listing its expected benches fails loudly when one silently
    stopped publishing.
    """
    history_dir = Path(history_dir)
    report = CompareReport()
    if benches:
        names = list(benches)
    else:
        names = sorted(
            p.stem for p in history_dir.glob("*.jsonl")
        ) if history_dir.is_dir() else []
    for name in names:
        path = history_dir / f"{name}.jsonl"
        if not path.is_file():
            report.missing.append(name)
            continue
        report.verdicts.extend(compare_history(load_history(path)))
    return report
