"""Latency attribution, SLO attainment, and perf-regression tracking.

``repro.insight`` is the *analysis* layer over :mod:`repro.telemetry`:
it consumes traces, request records, and bench results the serving
stack already produces and turns them into verdicts.  It is strictly
read-only — engines never import it (SLO policies reach them duck-typed
through the ``slo=`` constructor argument), and enabling any of it
leaves token streams and core stats bit-identical.

Three subsystems:

* :mod:`~repro.insight.timeline` + :mod:`~repro.insight.attribution` —
  **critical-path latency attribution**.  Rebuilds each request's
  lifecycle from trace events and decomposes its end-to-end latency
  into an *exact* blame vector over ten causes (queue wait, prefill,
  decode, preempt/quarantine/drain discard and requeue, retry backoff).
  Arithmetic is :class:`fractions.Fraction`-exact in the exported
  microsecond domain: per-cause and per-phase totals sum bit-exactly to
  the recorded e2e latency, and any trace that cannot be tiled raises
  instead of guessing.  CLI: ``repro attribution TRACE`` (part of
  ``repro slo-report``'s text output too).

* :mod:`~repro.insight.slo` — **declarative SLOs**.
  ``CLASS:METRIC:pPCT:TARGET_MS`` objectives (e.g. ``0:ttft:p95:150``,
  ``all:e2e:p99:2000``) evaluated over simulated time: measured
  percentile, attainment, and error-budget burn rate per tumbling
  window.  Threads into ``ServingStats.slo`` / ``ClusterStats.slo``
  via ``--slo`` on ``repro serve`` / ``serve-cluster``, or evaluates a
  trace offline via ``repro slo-report``.

* :mod:`~repro.insight.history` — **continuous perf tracking**.
  Benches append normalized, timestamp-free records to
  ``benchmarks/results/history/*.jsonl``; ``repro bench-compare``
  judges the latest run against the median of history with noise-aware
  (median + MAD) thresholds and fails CI on regression.

Everything here inherits the simulated-clock determinism contract:
identical runs produce byte-identical reports, histories, and JSON
artifacts.
"""

from .attribution import CAUSES, BlameVector, TraceAttribution
from .history import (
    CompareReport,
    append_history,
    compare_all,
    compare_history,
    load_history,
    metric,
)
from .slo import (
    RequestSample,
    SLOObjective,
    SLOPolicy,
    SLOReport,
    samples_from_records,
    samples_from_timelines,
)
from .timeline import (
    PhaseSpan,
    RequestTimeline,
    timelines_from_events,
    timelines_from_tracer,
)

__all__ = [
    "CAUSES",
    "BlameVector",
    "CompareReport",
    "PhaseSpan",
    "RequestSample",
    "RequestTimeline",
    "SLOObjective",
    "SLOPolicy",
    "SLOReport",
    "TraceAttribution",
    "append_history",
    "compare_all",
    "compare_history",
    "load_history",
    "metric",
    "samples_from_records",
    "samples_from_timelines",
    "timelines_from_events",
    "timelines_from_tracer",
]
