"""Critical-path latency attribution: exact per-request blame vectors.

Every completed request's end-to-end latency (terminal event minus
arrival, on the simulated clock) is decomposed into a *blame vector* —
one exact rational duration per cause — by walking the request's phase
spans (:mod:`repro.insight.timeline`) and classifying each covered
segment and each uncovered gap:

========================  ========  =======================================
cause                     phase     what it measures
========================  ========  =======================================
``queue_wait``            queued    first admission wait (pool/batch
                                    pressure, admission stall)
``prefill``               prefill   the surviving prefill (chunked or
                                    monolithic) that promoted the request
``decode``                decode    the surviving decode — the sum of the
                                    inter-token gaps
``preempt_discard``       varies    prefill/decode work a preemption threw
                                    away (recompute cost)
``preempt_requeue``       queued    re-queue wait after a preemption
``quarantine_discard``    varies    work a KV-corruption quarantine threw
                                    away
``quarantine_requeue``    queued    re-queue wait after a quarantine
``drain_discard``         varies    work a replica drain threw away
``drain_requeue``         queued    drain-to-readmission penalty (re-route
                                    plus the new replica's queue)
``retry_backoff``         offline   time outside any engine: cluster
                                    routing latency and placement retry
                                    backoff
========================  ========  =======================================

Segments are exact :class:`fractions.Fraction` durations on the
exported-microsecond axis, so per-request components sum *bit-exactly*
to the recorded e2e latency — enforced by construction and re-asserted
per request.  Aggregations (per cause, per phase) are sums of exact
rationals and therefore deterministic and order-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..eval.reporting import Table
from .timeline import (
    RequestTimeline,
    timelines_from_events,
    timelines_from_tracer,
)

__all__ = [
    "CAUSES",
    "CAUSE_PHASE",
    "BlameVector",
    "TraceAttribution",
    "attribute_timeline",
]

#: Every attribution cause, in report order.
CAUSES = (
    "queue_wait",
    "prefill",
    "decode",
    "preempt_discard",
    "preempt_requeue",
    "quarantine_discard",
    "quarantine_requeue",
    "drain_discard",
    "drain_requeue",
    "retry_backoff",
)

#: Phase each cause's time is spent in.  Discarded work keeps the phase
#: it was discarded from, so it is resolved per segment (``varies``).
CAUSE_PHASE = {
    "queue_wait": "queued",
    "prefill": "prefill",
    "decode": "decode",
    "preempt_discard": "varies",
    "preempt_requeue": "queued",
    "quarantine_discard": "varies",
    "quarantine_requeue": "queued",
    "drain_discard": "varies",
    "drain_requeue": "queued",
    "retry_backoff": "offline",
}

#: Span outcomes that put the request back in a queue (and how the
#: following queued span / gap is then classified).
_DISRUPTION_REQUEUE = {
    "preempted": "preempt_requeue",
    "quarantined": "quarantine_requeue",
    "drained": "drain_requeue",
}

#: Discard cause for a span cut short by a disruption.
_DISRUPTION_DISCARD = {
    "preempted": "preempt_discard",
    "quarantined": "quarantine_discard",
    "drained": "drain_discard",
}

_PHASES = ("queued", "prefill", "decode", "offline")


@dataclass
class BlameVector:
    """One request's exact latency decomposition."""

    request_id: int
    priority: int
    #: ``finished`` / ``shed`` / ``route_failed``.
    terminal: str
    n_tokens: int
    arrival_us: Fraction
    end_us: Fraction
    #: Exact duration per cause, microseconds (every cause present).
    components: Dict[str, Fraction] = field(default_factory=dict)
    #: Exact duration per phase, microseconds (every phase present).
    phases: Dict[str, Fraction] = field(default_factory=dict)

    @property
    def e2e_us(self) -> Fraction:
        return self.end_us - self.arrival_us

    @property
    def dominant_cause(self) -> str:
        """Largest component (ties break in :data:`CAUSES` order)."""
        return max(CAUSES, key=lambda c: (self.components[c], -CAUSES.index(c)))

    def to_dict(self) -> dict:
        """JSON-ready view (durations as float seconds)."""
        return {
            "request_id": self.request_id,
            "priority": self.priority,
            "terminal": self.terminal,
            "n_tokens": self.n_tokens,
            "e2e_s": float(self.e2e_us) / 1e6,
            "components_s": {
                cause: float(self.components[cause]) / 1e6
                for cause in CAUSES
            },
            "phases_s": {
                phase: float(self.phases[phase]) / 1e6
                for phase in _PHASES
            },
        }


def attribute_timeline(tl: RequestTimeline) -> BlameVector:
    """Decompose one complete timeline into its exact blame vector.

    Raises :class:`ValueError` when the timeline is incomplete (no
    arrival or no terminal event) or its spans overlap beyond the
    snapping tolerance — both mean the trace cannot support exact
    attribution for this request.
    """
    if not tl.complete:
        raise ValueError(
            f"request {tl.request_id}: timeline is incomplete "
            f"(arrival={tl.arrival_us}, terminal={tl.terminal}); "
            f"cannot attribute a request the trace never finished"
        )
    components = {cause: Fraction(0) for cause in CAUSES}
    phases = {phase: Fraction(0) for phase in _PHASES}

    def book(cause: str, phase: str, amount: Fraction) -> None:
        components[cause] += amount
        phases[phase] += amount

    cursor = tl.arrival_us
    #: Most recent disruption outcome — classifies the queued span /
    #: gap that follows a preempt, quarantine, or drain.
    disruption: Optional[str] = None
    for span in tl.spans:
        if span.start_us < cursor:
            raise ValueError(
                f"request {tl.request_id}: span {span.describe()} "
                f"overlaps the preceding segment ending at "
                f"{float(cursor)}us; overlapping lifecycle spans cannot "
                f"be attributed exactly"
            )
        if span.start_us > cursor:
            # Uncovered gap: time outside any engine.  After a drain it
            # is the re-route penalty; otherwise routing/retry backoff.
            gap = span.start_us - cursor
            if disruption == "drained":
                book("drain_requeue", "offline", gap)
            else:
                book("retry_backoff", "offline", gap)
        length = span.end_us - span.start_us
        if span.name == "queued":
            if disruption is not None:
                book(_DISRUPTION_REQUEUE[disruption], "queued", length)
            else:
                book("queue_wait", "queued", length)
        elif span.outcome in _DISRUPTION_DISCARD:
            book(_DISRUPTION_DISCARD[span.outcome], span.name, length)
        elif span.name == "prefill":
            book("prefill", "prefill", length)
        else:
            book("decode", "decode", length)
        disruption = (
            span.outcome if span.outcome in _DISRUPTION_REQUEUE
            else disruption
        )
        if span.outcome in ("admitted", "promoted", "finished"):
            disruption = None
        cursor = span.end_us
    if cursor > tl.end_us:
        raise ValueError(
            f"request {tl.request_id}: spans extend to {float(cursor)}us, "
            f"past the terminal event at {float(tl.end_us)}us"
        )
    if cursor < tl.end_us:
        tail = tl.end_us - cursor
        if disruption == "drained":
            book("drain_requeue", "offline", tail)
        else:
            book("retry_backoff", "offline", tail)

    vector = BlameVector(
        request_id=tl.request_id,
        priority=tl.priority,
        terminal=tl.terminal,
        n_tokens=tl.n_tokens,
        arrival_us=tl.arrival_us,
        end_us=tl.end_us,
        components=components,
        phases=phases,
    )
    total = sum(components.values())
    if total != vector.e2e_us:
        raise ValueError(
            f"request {tl.request_id}: blame vector sums to "
            f"{float(total)}us but e2e is {float(vector.e2e_us)}us — "
            f"attribution lost exactness"
        )
    return vector


@dataclass
class TraceAttribution:
    """Blame vectors for every attributable request in one trace."""

    vectors: List[BlameVector]
    #: Requests the trace left in flight (no terminal event): counted,
    #: never silently dropped.
    n_unattributed: int = 0

    @classmethod
    def from_timelines(
        cls, timelines: Dict[int, RequestTimeline]
    ) -> "TraceAttribution":
        vectors = []
        unattributed = 0
        for rid in sorted(timelines):
            tl = timelines[rid]
            if not tl.complete:
                unattributed += 1
                continue
            vectors.append(attribute_timeline(tl))
        return cls(vectors=vectors, n_unattributed=unattributed)

    @classmethod
    def from_tracer(cls, tracer) -> "TraceAttribution":
        return cls.from_timelines(timelines_from_tracer(tracer))

    @classmethod
    def from_events(cls, trace_events) -> "TraceAttribution":
        return cls.from_timelines(timelines_from_events(trace_events))

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def cause_totals_us(self) -> Dict[str, Fraction]:
        totals = {cause: Fraction(0) for cause in CAUSES}
        for vector in self.vectors:
            for cause in CAUSES:
                totals[cause] += vector.components[cause]
        return totals

    def phase_totals_us(self) -> Dict[str, Fraction]:
        totals = {phase: Fraction(0) for phase in _PHASES}
        for vector in self.vectors:
            for phase in _PHASES:
                totals[phase] += vector.phases[phase]
        return totals

    def total_e2e_us(self) -> Fraction:
        return sum((v.e2e_us for v in self.vectors), Fraction(0))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Deterministic JSON-ready report."""
        total = self.total_e2e_us()
        cause_totals = self.cause_totals_us()
        phase_totals = self.phase_totals_us()
        return {
            "n_requests": len(self.vectors),
            "n_unattributed": self.n_unattributed,
            "total_e2e_s": float(total) / 1e6,
            "causes": {
                cause: {
                    "total_s": float(cause_totals[cause]) / 1e6,
                    "share": (
                        float(cause_totals[cause] / total) if total else 0.0
                    ),
                }
                for cause in CAUSES
            },
            "phases": {
                phase: {
                    "total_s": float(phase_totals[phase]) / 1e6,
                    "share": (
                        float(phase_totals[phase] / total) if total else 0.0
                    ),
                }
                for phase in _PHASES
            },
            "requests": [vector.to_dict() for vector in self.vectors],
        }

    def table(self, top_requests: int = 5) -> List[Table]:
        """Per-cause, per-phase, and worst-request summary tables."""
        total = self.total_e2e_us()
        n = len(self.vectors)
        ms = 1e3
        causes = Table(
            title=(
                f"latency attribution by cause — {n} request(s), "
                f"{float(total) / 1e6 * ms:.1f} ms total e2e"
            ),
            headers=["cause", "total (ms)", "share", "mean/req (ms)"],
        )
        cause_totals = self.cause_totals_us()
        for cause in CAUSES:
            amount = cause_totals[cause]
            causes.add_row(
                cause,
                f"{float(amount) / 1e6 * ms:.2f}",
                f"{float(amount / total) * 100:.1f}%" if total else "n/a",
                f"{float(amount) / 1e6 * ms / n:.2f}" if n else "n/a",
            )
        if self.n_unattributed:
            causes.add_note(
                f"{self.n_unattributed} request(s) had no terminal event "
                f"and were left unattributed"
            )
        phases = Table(
            title="latency attribution by phase",
            headers=["phase", "total (ms)", "share"],
        )
        phase_totals = self.phase_totals_us()
        for phase in _PHASES:
            amount = phase_totals[phase]
            phases.add_row(
                phase,
                f"{float(amount) / 1e6 * ms:.2f}",
                f"{float(amount / total) * 100:.1f}%" if total else "n/a",
            )
        worst = Table(
            title=f"slowest requests (top {top_requests})",
            headers=["request", "e2e (ms)", "dominant cause",
                     "dominant (ms)", "terminal"],
        )
        ranked = sorted(
            self.vectors, key=lambda v: (-v.e2e_us, v.request_id)
        )[:top_requests]
        for vector in ranked:
            cause = vector.dominant_cause
            worst.add_row(
                f"req {vector.request_id}",
                f"{float(vector.e2e_us) / 1e6 * ms:.2f}",
                cause,
                f"{float(vector.components[cause]) / 1e6 * ms:.2f}",
                vector.terminal,
            )
        return [causes, phases, worst]

    def render(self, top_requests: int = 5) -> str:
        return "\n\n".join(
            str(t) for t in self.table(top_requests=top_requests)
        )
