"""Declarative SLOs: attainment and error-budget burn on simulated time.

An :class:`SLOObjective` states one promise — "traffic class *C* meets
a *METRIC* percentile target" — in the compact spec syntax the CLI
accepts (``--slo CLASS:METRIC:pPCT:TARGET_MS``):

* ``CLASS`` — a priority tier (the integer the request carries) or
  ``all`` for every request;
* ``METRIC`` — ``ttft`` (time to first token), ``tpot`` (time per
  output token: decode seconds per token after the first), or ``e2e``
  (arrival to terminal event);
* ``pPCT`` — the percentile, e.g. ``p95`` or ``p99.9``;
* ``TARGET_MS`` — the target in milliseconds of simulated time.

``0:ttft:p95:150`` reads "tier 0's p95 TTFT stays under 150 ms".

An :class:`SLOPolicy` bundles objectives with a window width and
evaluates them over request samples from either source — the engines'
:class:`~repro.serving.request.RequestRecord` lists (threaded into
``ServingStats.slo`` / ``ClusterStats.slo`` when an engine is built
with ``slo=...``) or the per-request timelines the trace reconstructs
(the ``repro slo-report`` path).  Both reduce to the same
:class:`RequestSample` shape, so the two views agree by construction.

Evaluation is deliberately simple and exactly reproducible:

* the *measured* percentile uses the same NaN-propagating
  ``_percentile`` the serving stats report (no samples → NaN → rendered
  ``n/a`` / JSON ``null``, never a fake zero);
* *attainment* is the fraction of eligible requests meeting the target,
  where a FAILED request counts as a violation of every objective on
  its tier (a dropped request met no latency promise);
* *burn rate* tiles the run into tumbling simulated-clock windows (by
  arrival time) and reports each window's violation rate divided by the
  error budget (``1 - pct/100``) — burn > 1 means the window spent
  budget faster than the objective allows; the report carries the worst
  window and how many windows burned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..eval.reporting import Table
from ..serving.request import RequestStatus
from ..serving.stats import _null_if_nan, _percentile
from .timeline import RequestTimeline

__all__ = [
    "SLO_METRICS",
    "RequestSample",
    "SLOObjective",
    "SLOPolicy",
    "SLOReport",
    "samples_from_records",
    "samples_from_timelines",
]

SLO_METRICS = ("ttft", "tpot", "e2e")


@dataclass(frozen=True)
class RequestSample:
    """One request's SLO-relevant outcome, source-agnostic."""

    request_id: int
    priority: int
    arrival_s: float
    #: ``None`` when the metric is undefined for this request (a failed
    #: request has no latencies; a 1-token request has no TPOT).
    ttft_s: Optional[float]
    tpot_s: Optional[float]
    e2e_s: Optional[float]
    failed: bool

    def value(self, metric: str) -> Optional[float]:
        return getattr(self, f"{metric}_s")


def samples_from_records(records) -> List[RequestSample]:
    """Samples from engine :class:`RequestRecord` lists."""
    samples = []
    for record in records:
        arrival = record.request.arrival_time
        failed = record.status is RequestStatus.FAILED
        ttft = tpot = e2e = None
        if record.first_token_time is not None:
            ttft = record.first_token_time - arrival
        if record.finish_time is not None:
            e2e = record.finish_time - arrival
            if record.first_token_time is not None \
                    and record.n_generated >= 2:
                tpot = (record.finish_time - record.first_token_time) \
                    / (record.n_generated - 1)
        samples.append(RequestSample(
            request_id=record.request.request_id,
            priority=record.request.priority,
            arrival_s=arrival,
            ttft_s=ttft, tpot_s=tpot, e2e_s=e2e,
            failed=failed,
        ))
    return sorted(samples, key=lambda s: s.request_id)


def samples_from_timelines(
    timelines: Dict[int, RequestTimeline],
) -> List[RequestSample]:
    """Samples from trace-reconstructed timelines.

    Matches :func:`samples_from_records` semantics: TTFT is the last
    promotion (requeues reset the record's first-token time), TPOT is
    decode seconds per token after the first, failed requests carry no
    latency samples.
    """
    samples = []
    for rid in sorted(timelines):
        tl = timelines[rid]
        if tl.arrival_us is None:
            continue
        arrival = float(tl.arrival_us) / 1e6
        failed = tl.failed
        ttft = tpot = e2e = None
        ttft_us = tl.ttft_us
        if not failed and ttft_us is not None:
            ttft = float(ttft_us) / 1e6
        if not failed and tl.end_us is not None:
            e2e = float(tl.end_us - tl.arrival_us) / 1e6
            if ttft_us is not None and tl.n_tokens >= 2:
                tpot = float(
                    tl.end_us - tl.promoted_us[-1]
                ) / 1e6 / (tl.n_tokens - 1)
        samples.append(RequestSample(
            request_id=rid,
            priority=tl.priority,
            arrival_s=arrival,
            ttft_s=ttft, tpot_s=tpot, e2e_s=e2e,
            failed=failed,
        ))
    return samples


@dataclass(frozen=True)
class SLOObjective:
    """One declarative objective: CLASS:METRIC:pPCT:TARGET_MS."""

    metric: str
    percentile: float
    target_s: float
    #: Priority tier the objective covers; ``None`` means every request.
    tier: Optional[int] = None

    def __post_init__(self):
        if self.metric not in SLO_METRICS:
            raise ValueError(
                f"unknown SLO metric {self.metric!r}; "
                f"choose from {SLO_METRICS}"
            )
        if not 0 < self.percentile <= 100:
            raise ValueError(
                f"SLO percentile must be in (0, 100], got {self.percentile}"
            )
        if not self.target_s > 0:
            raise ValueError(
                f"SLO target must be positive, got {self.target_s}"
            )

    @property
    def name(self) -> str:
        tier = "all" if self.tier is None else str(self.tier)
        pct = f"{self.percentile:g}"
        return f"{tier}:{self.metric}:p{pct}:{self.target_s * 1e3:g}ms"

    @property
    def error_budget(self) -> float:
        """Allowed violation fraction (``1 - pct/100``)."""
        return 1.0 - self.percentile / 100.0

    @classmethod
    def parse(cls, spec: str) -> "SLOObjective":
        """Parse a ``CLASS:METRIC:pPCT:TARGET_MS`` spec string."""
        parts = spec.split(":")
        if len(parts) != 4:
            raise ValueError(
                f"bad SLO spec {spec!r}: expected CLASS:METRIC:pPCT:"
                f"TARGET_MS, e.g. 0:ttft:p95:150 or all:e2e:p99:2000"
            )
        tier_part, metric, pct_part, target_part = parts
        if tier_part == "all":
            tier = None
        else:
            try:
                tier = int(tier_part)
            except ValueError:
                raise ValueError(
                    f"bad SLO traffic class {tier_part!r} in {spec!r}: "
                    f"expected a priority integer or 'all'"
                ) from None
        if not pct_part.startswith("p"):
            raise ValueError(
                f"bad SLO percentile {pct_part!r} in {spec!r}: "
                f"expected e.g. p95 or p99.9"
            )
        try:
            percentile = float(pct_part[1:])
            target_s = float(target_part) / 1e3
        except ValueError:
            raise ValueError(
                f"bad SLO spec {spec!r}: percentile and target must be "
                f"numbers (e.g. 0:ttft:p95:150)"
            ) from None
        return cls(
            metric=metric, percentile=percentile, target_s=target_s,
            tier=tier,
        )

    def eligible(self, sample: RequestSample) -> bool:
        return self.tier is None or sample.priority == self.tier


@dataclass(frozen=True)
class SLOPolicy:
    """A set of objectives plus the burn-rate window width."""

    objectives: Tuple[SLOObjective, ...]
    window_s: float = 0.1

    def __post_init__(self):
        if not self.objectives:
            raise ValueError("SLO policy needs at least one objective")
        if not self.window_s > 0:
            raise ValueError("SLO window must be positive")

    @classmethod
    def from_specs(
        cls, specs: Sequence[str], window_s: float = 0.1
    ) -> "SLOPolicy":
        return cls(
            objectives=tuple(SLOObjective.parse(s) for s in specs),
            window_s=window_s,
        )

    # ------------------------------------------------------------------
    def evaluate_records(self, records, makespan_s: float) -> "SLOReport":
        return self.evaluate_samples(samples_from_records(records),
                                     makespan_s)

    def evaluate_timelines(
        self, timelines: Dict[int, RequestTimeline], makespan_s: float
    ) -> "SLOReport":
        return self.evaluate_samples(samples_from_timelines(timelines),
                                     makespan_s)

    def evaluate_samples(
        self, samples: Sequence[RequestSample], makespan_s: float
    ) -> "SLOReport":
        results = [
            self._evaluate_objective(obj, samples)
            for obj in self.objectives
        ]
        return SLOReport(
            objectives=list(self.objectives),
            results=results,
            window_s=self.window_s,
            makespan_s=makespan_s,
        )

    def _evaluate_objective(
        self, obj: SLOObjective, samples: Sequence[RequestSample]
    ) -> dict:
        #: (arrival, violated) per sample the objective can judge: a
        #: failed request violates; a request with the metric defined
        #: is judged against the target; a finished request for which
        #: the metric is undefined (1-token TPOT) is out of scope.
        judged: List[Tuple[float, bool]] = []
        values: List[float] = []
        for sample in samples:
            if not obj.eligible(sample):
                continue
            if sample.failed:
                judged.append((sample.arrival_s, True))
                continue
            value = sample.value(obj.metric)
            if value is None:
                continue
            values.append(value)
            judged.append((sample.arrival_s, value > obj.target_s))
        n = len(judged)
        n_violations = sum(violated for _, violated in judged)
        measured = _percentile(values, obj.percentile)
        attained = None if math.isnan(measured) \
            else bool(measured <= obj.target_s)
        attainment = (n - n_violations) / n if n else float("nan")

        # Tumbling windows over arrival time: worst burn and how many
        # windows burned budget faster than allowed (> 1).
        windows: Dict[int, List[bool]] = {}
        for arrival, violated in judged:
            windows.setdefault(int(arrival // self.window_s), []).append(
                violated
            )
        budget = obj.error_budget
        worst_burn = float("nan")
        worst_window_start = None
        n_burning = 0
        for index in sorted(windows):
            outcomes = windows[index]
            rate = sum(outcomes) / len(outcomes)
            burn = (
                rate / budget if budget > 0
                else (math.inf if rate > 0 else 0.0)
            )
            if math.isnan(worst_burn) or burn > worst_burn:
                worst_burn = burn
                worst_window_start = index * self.window_s
            if burn > 1.0:
                n_burning += 1
        return {
            "objective": obj.name,
            "traffic_class": "all" if obj.tier is None else obj.tier,
            "metric": obj.metric,
            "percentile": obj.percentile,
            "target_s": obj.target_s,
            "n_samples": n,
            "n_violations": n_violations,
            "measured_s": _null_if_nan(measured),
            "attained": attained,
            "attainment": _null_if_nan(attainment),
            "error_budget": budget,
            "burn_rate_worst": _finite_or_none(worst_burn),
            "burn_window_start_s": worst_window_start,
            "n_windows": len(windows),
            "n_burning_windows": n_burning,
        }


def _finite_or_none(value: float) -> Optional[float]:
    """Strict-JSON guard: NaN *and* inf become null (json.dumps would
    otherwise emit the non-standard ``Infinity`` literal)."""
    return value if isinstance(value, float) and math.isfinite(value) \
        else (value if not isinstance(value, float) else None)


@dataclass
class SLOReport:
    """Attainment verdicts for one run under one policy."""

    objectives: List[SLOObjective]
    results: List[dict]
    window_s: float
    makespan_s: float

    @property
    def attained(self) -> Optional[bool]:
        """Whether every measurable objective met its target."""
        verdicts = [r["attained"] for r in self.results]
        if any(v is False for v in verdicts):
            return False
        if all(v is None for v in verdicts):
            return None
        return True

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "makespan_s": self.makespan_s,
            "attained": self.attained,
            "objectives": [dict(r) for r in self.results],
        }

    def table(self) -> Table:
        t = Table(
            title=(
                f"SLO attainment — {len(self.results)} objective(s), "
                f"{self.window_s * 1e3:g} ms windows"
            ),
            headers=["objective", "measured", "target", "attained",
                     "violations", "worst burn"],
        )
        for r in self.results:
            measured = r["measured_s"]
            burn = r["burn_rate_worst"]
            t.add_row(
                r["objective"],
                "n/a" if measured is None else f"{measured * 1e3:.2f} ms",
                f"{r['target_s'] * 1e3:g} ms",
                {True: "yes", False: "NO", None: "n/a"}[r["attained"]],
                f"{r['n_violations']}/{r['n_samples']}",
                (
                    "n/a" if burn is None and r["n_windows"] == 0
                    else "inf" if burn is None
                    else f"{burn:.2f}x"
                ),
            )
        verdict = self.attained
        t.add_note(
            "every objective attained" if verdict
            else "objective(s) MISSED" if verdict is False
            else "no measurable samples"
        )
        return t

    def render(self) -> str:
        return str(self.table())
