"""Per-request lifecycle timelines reconstructed from trace events.

The attribution engine (:mod:`repro.insight.attribution`) needs, for
every request, the exact tiling of its end-to-end interval by lifecycle
phases: the ``queued`` / ``prefill`` / ``decode`` spans the serving and
cluster engines emit, the instants that bound them (``submitted``,
``promoted``, ``finished``, ``shed``, ``route_failed``), and the
uncovered gaps in between (cluster routing latency, retry backoff,
drain-to-resubmit windows).  This module turns a raw event stream —
either an in-memory :class:`~repro.telemetry.tracer.Tracer` or a Chrome
trace file — into that normalized per-request view.

Exactness model
---------------

Timestamps live in the *microsecond domain* as exact rationals
(:class:`fractions.Fraction` of the float microsecond values), matching
the Chrome exporter's ``ts = t * 1e6`` convention bit for bit.  Both
input paths apply the identical conversion, so a timeline built from a
tracer in memory equals the one built from its exported file.

A span's exported end (``ts + dur``) can differ from the next span's
start — or from the terminal instant — by a float ulp, because the
exporter rounds start and duration independently.  :data:`SNAP_EPS_US`
(one simulated nanosecond) bounds that rounding; adjacent boundaries
within it are *snapped* together so phase segments telescope exactly
and blame vectors sum bit-exactly to the recorded e2e latency.  Real
scheduling gaps are several orders of magnitude wider, so snapping can
never swallow one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SNAP_EPS_US",
    "PhaseSpan",
    "RequestTimeline",
    "timelines_from_events",
    "timelines_from_tracer",
]

#: Boundary-snapping tolerance in exported microseconds: 1e-3 us = 1
#: simulated nanosecond, far above the float rounding it absorbs (at
#: most a few ulps of a <1e7 us timestamp, ~1e-8 us) and far below any
#: real scheduling gap the simulated clock produces (>= microseconds).
SNAP_EPS_US = Fraction(1, 1000)

#: Request tracks are named ``req <id>`` by the engines.
_TRACK_RE = re.compile(r"^req (\d+)$")

#: Lifecycle phase spans the engines emit on request tracks.
PHASES = ("queued", "prefill", "decode")

#: Instants that terminate a request's timeline.
_TERMINALS = ("finished", "shed", "route_failed")


@dataclass
class PhaseSpan:
    """One lifecycle phase interval on a request's timeline."""

    name: str
    start_us: Fraction
    end_us: Fraction
    outcome: str
    process: str

    def describe(self) -> str:
        return (
            f"{self.name}[{float(self.start_us)}us..{float(self.end_us)}us"
            f", outcome={self.outcome}, process={self.process}]"
        )


@dataclass
class RequestTimeline:
    """Everything one request did, on the exported-microsecond axis."""

    request_id: int
    priority: int = 0
    prompt_len: int = 0
    max_new_tokens: int = 0
    #: Exact arrival timestamp (``arrival_time * 1e6``); falls back to
    #: the first ``submitted`` instant for traces predating the
    #: ``arrival_time`` span metadata.
    arrival_us: Optional[Fraction] = None
    #: ``submitted`` instant times — one per engine the request visited.
    submit_us: List[Fraction] = field(default_factory=list)
    #: ``promoted`` instants (first token of each admission cycle).
    promoted_us: List[Fraction] = field(default_factory=list)
    spans: List[PhaseSpan] = field(default_factory=list)
    #: ``finished`` / ``shed`` / ``route_failed``, or ``None`` when the
    #: trace ends with the request still in flight (partial run).
    terminal: Optional[str] = None
    end_us: Optional[Fraction] = None
    n_tokens: int = 0
    n_route_retries: int = 0

    @property
    def complete(self) -> bool:
        """Whether the timeline is attributable end to end."""
        return self.arrival_us is not None and self.end_us is not None

    @property
    def failed(self) -> bool:
        return self.terminal in ("shed", "route_failed")

    @property
    def ttft_us(self) -> Optional[Fraction]:
        """First token of the *surviving* admission cycle vs arrival.

        Matches ``RequestRecord.time_to_first_token``: preempt /
        quarantine / drain requeues reset the record's first-token
        time, so the last promotion is the one the stats report.
        """
        if self.arrival_us is None or not self.promoted_us:
            return None
        return self.promoted_us[-1] - self.arrival_us

    def _normalize(self) -> None:
        """Sort spans and snap ulp-sized boundary mismatches (in place).

        Adjacent span boundaries, the arrival vs the first span start,
        and the last span end vs the terminal instant are each snapped
        when within :data:`SNAP_EPS_US`, re-establishing the exact
        telescoping the simulated clock guarantees in seconds.
        """
        self.spans.sort(key=lambda s: (s.start_us, s.end_us, s.name))
        self.submit_us.sort()
        self.promoted_us.sort()
        for prev, nxt in zip(self.spans, self.spans[1:]):
            if abs(nxt.start_us - prev.end_us) <= SNAP_EPS_US:
                prev.end_us = nxt.start_us
        if self.spans and self.arrival_us is not None:
            first = self.spans[0]
            if abs(first.start_us - self.arrival_us) <= SNAP_EPS_US:
                first.start_us = self.arrival_us
        if self.spans and self.end_us is not None:
            last = self.spans[-1]
            if abs(self.end_us - last.end_us) <= SNAP_EPS_US:
                last.end_us = self.end_us


def _us(t: float) -> Fraction:
    """Exact rational of a float timestamp on the exported-us axis."""
    return Fraction(t * 1e6)


def _us_exact(ts: float) -> Fraction:
    """Exact rational of a value already in exported microseconds."""
    return Fraction(ts)


def timelines_from_tracer(tracer) -> Dict[int, RequestTimeline]:
    """Timelines from an in-memory :class:`~repro.telemetry.Tracer`.

    Applies the Chrome exporter's ``t * 1e6`` conversion to every
    timestamp so the result is bit-identical to parsing the exported
    file (see the module docstring's exactness model).
    """
    rows = []
    for event in tracer.events:
        if event.kind == "counter":
            continue
        rows.append((
            event.kind, event.name, _us(event.t),
            _us(event.t) + Fraction(event.dur * 1e6),
            event.process, event.track, event.args_dict,
        ))
    return _build_timelines(rows)


def timelines_from_events(
    trace_events: Iterable[dict],
) -> Dict[int, RequestTimeline]:
    """Timelines from Chrome ``traceEvents`` dicts (a loaded file)."""
    trace_events = list(trace_events)
    procs: Dict[int, str] = {}
    threads: Dict[Tuple[int, int], str] = {}
    rows = []
    for event in trace_events:
        ph = event.get("ph")
        if ph == "M":
            args = event.get("args", {})
            if event.get("name") == "process_name":
                procs[event["pid"]] = str(args.get("name", ""))
            elif event.get("name") == "thread_name":
                threads[(event["pid"], event.get("tid", 0))] = str(
                    args.get("name", "")
                )
    for event in trace_events:
        ph = event.get("ph")
        if ph not in ("X", "i"):
            continue
        pid = event.get("pid")
        process = procs.get(pid, str(pid))
        track = threads.get((pid, event.get("tid", 0)), "")
        start = _us_exact(event["ts"])
        end = start + Fraction(event.get("dur", 0.0)) if ph == "X" else start
        rows.append((
            "span" if ph == "X" else "instant", event.get("name", ""),
            start, end, process, track, event.get("args", {}),
        ))
    return _build_timelines(rows)


def _build_timelines(rows) -> Dict[int, RequestTimeline]:
    timelines: Dict[int, RequestTimeline] = {}

    def timeline(rid: int) -> RequestTimeline:
        if rid not in timelines:
            timelines[rid] = RequestTimeline(request_id=rid)
        return timelines[rid]

    for kind, name, start, end, process, track, args in rows:
        match = _TRACK_RE.match(track)
        if match is None:
            # Fleet router instants carry the request id in their args.
            if kind == "instant" and name == "route_failed" \
                    and "request_id" in args:
                tl = timeline(int(args["request_id"]))
                tl.terminal = "route_failed"
                tl.end_us = start
                if "arrival_time" in args and tl.arrival_us is None:
                    tl.arrival_us = _us(float(args["arrival_time"]))
            elif kind == "instant" and name == "route_retry" \
                    and "request_id" in args:
                timeline(int(args["request_id"])).n_route_retries += 1
            continue
        tl = timeline(int(match.group(1)))
        if kind == "span" and name in PHASES:
            tl.spans.append(PhaseSpan(
                name=name, start_us=start, end_us=end,
                outcome=str(args.get("outcome", "")), process=process,
            ))
        elif kind == "instant":
            if name == "submitted":
                tl.submit_us.append(start)
                tl.priority = int(args.get("priority", tl.priority))
                tl.prompt_len = int(args.get("prompt_len", tl.prompt_len))
                tl.max_new_tokens = int(
                    args.get("max_new_tokens", tl.max_new_tokens)
                )
                if "arrival_time" in args:
                    tl.arrival_us = _us(float(args["arrival_time"]))
            elif name == "promoted":
                tl.promoted_us.append(start)
            elif name in _TERMINALS:
                tl.terminal = name
                tl.end_us = start
                if name == "finished":
                    tl.n_tokens = int(args.get("n_tokens", 0))

    for tl in timelines.values():
        if tl.arrival_us is None and tl.submit_us:
            tl.arrival_us = min(tl.submit_us)
        tl._normalize()
    return dict(sorted(timelines.items()))
