"""Analytical cost models of the paper's CPU/GPU baselines.

The paper measures attention latency/power on four general-purpose
platforms (Section V-A): TITAN Xp (server GPU), Jetson Nano (mobile
GPU), Xeon E5-2640 v4 (server CPU), Raspberry Pi 4 ARM A53 (mobile
CPU), running PyTorch fp32 with cuDNN/MKL.

Those platforms are catastrophically inefficient on attention for two
reasons the paper quantifies:

* *low achieved FLOP/s* — Fig. 18 pins TITAN Xp at 0.02 TFLOPS on BERT
  attention and 0.01 TFLOPS on GPT-2 attention (vs a 12 TFLOPS roof),
  because the matmuls are small/batched-by-head and 73% of attention
  time goes to data movement (split/concat/reshape/transpose, Fig. 2);
* *fixed per-invocation overhead* — each attention layer costs a
  sequence of kernel launches (GPU) or framework dispatches (CPU), so
  short-sentence tasks (CoLA, 11 tokens) see speedups near 1000x while
  long ones (SQuAD) see ~80x (Fig. 14's spread).

Each :class:`PlatformSpec` therefore carries achieved-throughput points
anchored on the paper's published data plus a per-layer overhead; the
model is ``sum_steps max(flops/throughput, bytes/bandwidth) +
n_steps * overhead``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import ModelConfig
from ..core.trace import AttentionTrace
from ..eval.dram import BASELINE_BITS
from ..eval.flops import step_flops

__all__ = [
    "PlatformSpec",
    "PlatformReport",
    "TITAN_XP",
    "XEON",
    "JETSON_NANO",
    "RASPBERRY_PI",
    "ALL_PLATFORMS",
    "attention_cost",
    "fc_cost",
]


@dataclass(frozen=True)
class PlatformSpec:
    """One general-purpose platform's attention/FC efficiency envelope.

    Attributes:
        peak_flops: dense-matmul roof (marketing peak, fp32).
        dram_bandwidth: memory bandwidth roof (bytes/s).
        attn_eff_summarize: achieved FLOP/s on batch attention
            (summarization stage; Fig. 18 anchor for the GPU).
        attn_eff_decode: achieved FLOP/s on single-query attention
            (generation stage: vector-matrix, reshape-heavy).
        fc_eff_summarize: achieved FLOP/s on batch FC layers.
        fc_eff_decode: achieved FLOP/s on matrix-vector FC layers
            (bandwidth-bound; anchored on Table IV's 388 ms FC latency
            for GPT-2-Medium on the GPU).
        layer_overhead_summarize_s: fixed cost per attention-layer
            invocation in the batch summarization stage (kernel launches
            / dispatch / reshape data movement).
        layer_overhead_decode_s: fixed cost per attention-layer
            invocation in the generation stage (smaller: fewer and
            lighter kernels per single-query step).
        dynamic_power_w: measured dynamic power running attention
            (total minus idle, Section V-A protocol).
    """

    name: str
    peak_flops: float
    dram_bandwidth: float
    attn_eff_summarize: float
    attn_eff_decode: float
    fc_eff_summarize: float
    fc_eff_decode: float
    layer_overhead_summarize_s: float
    layer_overhead_decode_s: float
    dynamic_power_w: float


# Anchors: attention throughputs from Fig. 18 (0.02 / 0.01 TFLOPS);
# relative platform factors from the Fig. 14 geomeans (347/162 etc.);
# dynamic powers from the energy-vs-speedup ratios of Fig. 14.
TITAN_XP = PlatformSpec(
    name="titan-xp",
    peak_flops=12.1e12,
    dram_bandwidth=547.0e9,
    attn_eff_summarize=0.020e12,
    attn_eff_decode=0.010e12,
    fc_eff_summarize=3.6e12,
    fc_eff_decode=0.050e12,
    layer_overhead_summarize_s=500e-6,
    layer_overhead_decode_s=70e-6,
    dynamic_power_w=61.0,
)

XEON = PlatformSpec(
    name="xeon-e5-2640",
    peak_flops=0.384e12,
    dram_bandwidth=68.0e9,
    attn_eff_summarize=0.020e12 / 2.14,
    attn_eff_decode=0.010e12 / 2.14,
    fc_eff_summarize=0.12e12,
    fc_eff_decode=0.015e12,
    layer_overhead_summarize_s=700e-6,
    layer_overhead_decode_s=150e-6,
    dynamic_power_w=97.0,
)

JETSON_NANO = PlatformSpec(
    name="jetson-nano",
    peak_flops=0.236e12,
    dram_bandwidth=25.6e9,
    attn_eff_summarize=0.020e12 / 6.76,
    attn_eff_decode=0.010e12 / 6.76,
    fc_eff_summarize=0.05e12,
    fc_eff_decode=0.006e12,
    layer_overhead_summarize_s=2.0e-3,
    layer_overhead_decode_s=450e-6,
    dynamic_power_w=3.1,
)

RASPBERRY_PI = PlatformSpec(
    name="raspberry-pi-4",
    peak_flops=0.024e12,
    dram_bandwidth=4.0e9,
    attn_eff_summarize=0.020e12 / 31.3,
    attn_eff_decode=0.010e12 / 31.3,
    fc_eff_summarize=0.008e12,
    fc_eff_decode=0.0012e12,
    layer_overhead_summarize_s=10.0e-3,
    layer_overhead_decode_s=2.2e-3,
    dynamic_power_w=3.1,
)

ALL_PLATFORMS: List[PlatformSpec] = [TITAN_XP, XEON, JETSON_NANO, RASPBERRY_PI]


@dataclass
class PlatformReport:
    """Latency/energy of one workload on one platform."""

    platform: str
    latency_s: float
    energy_j: float
    flops: float
    dram_bytes: float

    @property
    def effective_tflops(self) -> float:
        if self.latency_s <= 0:
            return 0.0
        return self.flops / self.latency_s / 1e12


def _attention_step_bytes(step, model: ModelConfig) -> float:
    """fp32 QKV + output traffic of one dense attention execution."""
    head_dim = model.head_dim
    elems = (
        step.n_queries * step.n_heads * head_dim  # Q
        + 2 * step.n_keys * step.n_heads * head_dim  # K, V
        + step.n_queries * step.n_heads * head_dim  # output
    )
    return elems * BASELINE_BITS / 8.0


def attention_cost(
    spec: PlatformSpec,
    trace: AttentionTrace,
    include_summarize: bool = True,
    include_decode: bool = True,
    gather_overhead: float = 1.0,
) -> PlatformReport:
    """Attention-layer latency/energy of a workload trace on a platform.

    Pass a *dense* trace for the paper's baseline measurements; passing a
    SpAtten trace with ``gather_overhead > 1`` models the paper's
    "token pruning on CPUs/GPUs" experiment (topk+gather cost).
    """
    latency = 0.0
    total_flops = 0.0
    total_bytes = 0.0
    for step in trace.steps:
        if step.stage == "summarize" and not include_summarize:
            continue
        if step.stage == "decode" and not include_decode:
            continue
        eff = (
            spec.attn_eff_summarize
            if step.stage == "summarize"
            else spec.attn_eff_decode
        )
        flops = step_flops(step, trace.model).attention
        n_bytes = _attention_step_bytes(step, trace.model)
        overhead = (
            spec.layer_overhead_summarize_s
            if step.stage == "summarize"
            else spec.layer_overhead_decode_s
        )
        step_time = max(flops / eff, n_bytes / spec.dram_bandwidth)
        latency += step_time * gather_overhead + overhead
        total_flops += flops
        total_bytes += n_bytes
    return PlatformReport(
        platform=spec.name,
        latency_s=latency,
        energy_j=latency * spec.dynamic_power_w,
        flops=total_flops,
        dram_bytes=total_bytes,
    )


def fc_cost(
    spec: PlatformSpec,
    trace: AttentionTrace,
    include_summarize: bool = True,
    include_decode: bool = True,
) -> PlatformReport:
    """FC-layer (QKV proj + output FC + FFN) cost on a platform."""
    latency = 0.0
    total_flops = 0.0
    total_bytes = 0.0
    model = trace.model
    weight_bytes_block = (
        (4.0 * model.d_model**2 + 2.0 * model.d_model * model.d_ff)
        * BASELINE_BITS
        / 8.0
    )
    for step in trace.steps:
        if step.stage == "summarize" and not include_summarize:
            continue
        if step.stage == "decode" and not include_decode:
            continue
        eff = (
            spec.fc_eff_summarize
            if step.stage == "summarize"
            else spec.fc_eff_decode
        )
        flops = step_flops(step, model).fc
        step_time = max(flops / eff, weight_bytes_block / spec.dram_bandwidth)
        latency += step_time
        total_flops += flops
        total_bytes += weight_bytes_block
    return PlatformReport(
        platform=spec.name,
        latency_s=latency,
        energy_j=latency * spec.dynamic_power_w,
        flops=total_flops,
        dram_bytes=total_bytes,
    )
