"""A3 accelerator model (Ham et al., HPCA 2020) — prior art of Table III.

A3 approximates attention per query: it pre-sorts every key *dimension*
across all keys, then uses only the largest/smallest pre-specified
number of entries per dimension to estimate attention scores; keys whose
estimated score falls below a threshold are pruned *locally for that
query* before the exact computation.

Three properties the paper contrasts SpAtten against (Table III):

1. all Q/K/V must be fetched from DRAM before pruning can be decided —
   no DRAM-traffic reduction, so memory-bound generative models are not
   accelerated;
2. the per-dimension sort is pre-processing overhead paid per layer;
3. pruning is local to one query within one head — computation outside
   the attention layer (FFN) is untouched.

:func:`a3_attention` implements the algorithm functionally (tests check
it approximates dense attention); :class:`A3CostModel` reproduces the
published efficiency point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..nn.functional import softmax

__all__ = ["A3Stats", "a3_attention", "A3CostModel", "A3_PUBLISHED"]


@dataclass
class A3Stats:
    """Work profile of one A3 attention execution."""

    candidates_scored: int
    keys_kept: int
    keys_total: int
    preprocessing_ops: int

    @property
    def keep_fraction(self) -> float:
        return self.keys_kept / max(self.keys_total, 1)


def a3_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    n_components: int = 8,
    score_margin: float = 2.0,
) -> Tuple[np.ndarray, A3Stats]:
    """Approximate single-head attention, A3-style.

    Args:
        q: ``[D]`` one query vector.
        k: ``[L, D]`` keys.
        v: ``[L, D]`` values.
        n_components: entries per dimension used for score estimation
            (the paper's pre-specified number of largest/smallest).
        score_margin: keys whose estimated score is within
            ``score_margin`` of the estimated max survive; others are
            pruned locally.

    Returns:
        ``(output [D], A3Stats)``.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    n_keys, head_dim = k.shape

    # Pre-processing: sort each key dimension over all keys.
    order = np.argsort(k, axis=0)  # [L, D] (ascending)
    preprocessing_ops = int(n_keys * np.log2(max(n_keys, 2)) * head_dim)

    # Score estimation: per dimension d, only the keys holding the
    # n_components largest q_d * k_{j,d} products contribute.
    n_components = min(n_components, n_keys)
    estimates = np.zeros(n_keys)
    candidates_scored = 0
    for dim in range(head_dim):
        if q[dim] >= 0:
            chosen = order[-n_components:, dim]  # largest k values
        else:
            chosen = order[:n_components, dim]  # smallest (most negative)
        estimates[chosen] += q[dim] * k[chosen, dim]
        candidates_scored += n_components

    threshold = estimates.max() - score_margin * np.sqrt(head_dim)
    kept = np.flatnonzero(estimates >= threshold)
    if len(kept) == 0:
        kept = np.array([int(np.argmax(estimates))])

    scores = (k[kept] @ q) / np.sqrt(head_dim)
    probs = softmax(scores)
    output = probs @ v[kept]
    return output, A3Stats(
        candidates_scored=candidates_scored,
        keys_kept=len(kept),
        keys_total=n_keys,
        preprocessing_ops=preprocessing_ops,
    )


@dataclass(frozen=True)
class A3PublishedPoint:
    """Published Table III characteristics of A3."""

    technology: str = "ASIC (40nm)"
    frequency_hz: float = 1.0e9
    n_multipliers: int = 128
    area_mm2: float = 2.08
    throughput_gops: float = 221.0  # 128 GOP/s raw x 1.73 speedup
    energy_efficiency_gop_per_j: float = 269.0
    reduces_dram: bool = False
    supports_head_pruning: bool = False
    supports_token_pruning: bool = False  # only local, per-query key skip
    accelerates_generative: bool = False


A3_PUBLISHED = A3PublishedPoint()


class A3CostModel:
    """Latency/energy of A3 on an attention workload.

    A3 must fetch all Q/K/V before pruning (no DRAM saving) and only
    reduces the attention arithmetic by its measured 1.73x; the
    published effective throughput wraps both effects.
    """

    def __init__(
        self,
        point: A3PublishedPoint = A3_PUBLISHED,
        dram_bandwidth: float = 64.0e9,
    ):
        self.point = point
        self.dram_bandwidth = dram_bandwidth

    def attention_latency(self, dense_flops: float, dense_bytes: float) -> float:
        """Latency on a dense workload of the given size.

        ``dense_bytes`` are *not* reduced (limitation 1): the fetch and
        the (pruned) compute overlap, so latency is their max.
        """
        compute = dense_flops / (self.point.throughput_gops * 1e9)
        memory = dense_bytes / self.dram_bandwidth
        return max(compute, memory)

    def energy(self, dense_flops: float) -> float:
        return dense_flops / (self.point.energy_efficiency_gop_per_j * 1e9)
