"""MNNFast model (Jang et al., ISCA 2019) — prior art of Table III.

MNNFast prunes only *value* vectors: after softmax, V rows whose
attention probability falls below a threshold are skipped for the
``prob x V`` computation.  Like A3 it must fetch everything first, and
it touches neither keys, heads, nor FFN computation.

The published design is a Zynq-7020 FPGA; Table III projects it to
1 GHz and the paper assumes an optimistic 10x power reduction for an
ASIC port (1 W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..nn.functional import softmax

__all__ = ["MNNFastStats", "mnnfast_attention", "MNNFastCostModel", "MNNFAST_PUBLISHED"]


@dataclass
class MNNFastStats:
    values_kept: int
    values_total: int

    @property
    def keep_fraction(self) -> float:
        return self.values_kept / max(self.values_total, 1)


def mnnfast_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    prob_threshold: float = 0.01,
) -> Tuple[np.ndarray, MNNFastStats]:
    """Single-head attention with MNNFast's local V pruning.

    Probabilities are computed exactly; V rows with
    ``prob < prob_threshold`` are dropped from the weighted sum
    (without renormalisation).
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    scores = (k @ q) / np.sqrt(k.shape[1])
    probs = softmax(scores)
    kept = np.flatnonzero(probs >= prob_threshold)
    if len(kept) == 0:
        kept = np.array([int(np.argmax(probs))])
    output = probs[kept] @ v[kept]
    return output, MNNFastStats(values_kept=len(kept), values_total=len(v))


@dataclass(frozen=True)
class MNNFastPublishedPoint:
    """Published/projected Table III characteristics of MNNFast."""

    technology: str = "FPGA (28nm)"
    frequency_hz: float = 1.0e9  # projected
    area_mm2: float = float("nan")  # not reported
    throughput_gops: float = 120.0
    energy_efficiency_gop_per_j: float = 120.0  # 120 GOP/s at ~1 W (ASIC est.)
    reduces_dram: bool = False
    supports_head_pruning: bool = False
    supports_token_pruning: bool = False
    accelerates_generative: bool = False


MNNFAST_PUBLISHED = MNNFastPublishedPoint()


class MNNFastCostModel:
    """Latency/energy of MNNFast on an attention workload."""

    def __init__(
        self,
        point: MNNFastPublishedPoint = MNNFAST_PUBLISHED,
        dram_bandwidth: float = 64.0e9,
    ):
        self.point = point
        self.dram_bandwidth = dram_bandwidth

    def attention_latency(self, dense_flops: float, dense_bytes: float) -> float:
        compute = dense_flops / (self.point.throughput_gops * 1e9)
        memory = dense_bytes / self.dram_bandwidth
        return max(compute, memory)

    def energy(self, dense_flops: float) -> float:
        return dense_flops / (self.point.energy_efficiency_gop_per_j * 1e9)
