"""Roofline-model utilities (paper Fig. 18).

A machine's attainable performance at operational intensity ``I`` is
``min(compute_roof, I * bandwidth_roof)``.  The paper places SpAtten
close to both of its roofs (compute-bound BERT at 1.61 TFLOPS under a
2 TFLOPS roof; bandwidth-bound GPT-2 near the 512 GB/s slope) while the
GPU sits far below its roofs on both workloads because of low
utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["RooflinePoint", "Roofline", "attainable"]


@dataclass(frozen=True)
class Roofline:
    """One machine's roofs."""

    name: str
    compute_roof_flops: float
    bandwidth_roof: float  # bytes/s

    @property
    def ridge_intensity(self) -> float:
        """Ops/byte where the machine transitions to compute-bound."""
        return self.compute_roof_flops / self.bandwidth_roof


def attainable(roofline: Roofline, intensity: float) -> float:
    """Attainable FLOP/s at the given operational intensity."""
    if intensity < 0:
        raise ValueError("intensity must be non-negative")
    return min(roofline.compute_roof_flops, intensity * roofline.bandwidth_roof)


@dataclass
class RooflinePoint:
    """A measured (intensity, performance) point for plotting."""

    label: str
    machine: str
    intensity_ops_per_byte: float
    achieved_flops: float

    def utilisation(self, roofline: Roofline) -> float:
        """Fraction of the attainable performance actually achieved."""
        roof = attainable(roofline, self.intensity_ops_per_byte)
        return self.achieved_flops / roof if roof > 0 else 0.0


def classify(roofline: Roofline, point: RooflinePoint) -> str:
    """"memory-bound" or "compute-bound" region of the point."""
    if point.intensity_ops_per_byte < roofline.ridge_intensity:
        return "memory-bound"
    return "compute-bound"
