"""Baseline cost models: general-purpose platforms (TITAN Xp, Xeon,
Jetson Nano, Raspberry Pi) and the prior-art attention accelerators
A3 and MNNFast."""

from .a3 import A3_PUBLISHED, A3CostModel, A3Stats, a3_attention
from .mnnfast import (
    MNNFAST_PUBLISHED,
    MNNFastCostModel,
    MNNFastStats,
    mnnfast_attention,
)
from .platforms import (
    ALL_PLATFORMS,
    JETSON_NANO,
    RASPBERRY_PI,
    TITAN_XP,
    XEON,
    PlatformReport,
    PlatformSpec,
    attention_cost,
    fc_cost,
)
from .roofline import Roofline, RooflinePoint, attainable, classify

__all__ = [
    "A3_PUBLISHED",
    "A3CostModel",
    "A3Stats",
    "a3_attention",
    "MNNFAST_PUBLISHED",
    "MNNFastCostModel",
    "MNNFastStats",
    "mnnfast_attention",
    "ALL_PLATFORMS",
    "JETSON_NANO",
    "RASPBERRY_PI",
    "TITAN_XP",
    "XEON",
    "PlatformReport",
    "PlatformSpec",
    "attention_cost",
    "fc_cost",
    "Roofline",
    "RooflinePoint",
    "attainable",
    "classify",
]
