"""Wall-clock hot-path profiler for the packed decode backend.

Everything else in :mod:`repro.telemetry` runs on the *simulated*
clock; this profiler is the deliberate exception.  The simulated cost
model answers "what would this schedule cost on modeled hardware" —
it cannot answer "where does the *real* Python/BLAS time go in the
packed decode hot path".  :class:`HotPathProfiler` measures that with
``time.perf_counter`` around the
:class:`~repro.nn.batched_attention.PackedDecodeBackend` stages:

* ``decode_qkv_proj`` — the fused ``[B,1,d] @ [d,3d]`` projection;
* ``decode_dense_core`` — scores/softmax/A·V over the cache views;
* ``decode_custom_core`` — SpAtten executors' per-sequence cores;
* ``decode_output_fc`` — the fused output projection;
* ``decode_fallback`` — opt-out executors' ``run_layer`` rows;
* ``prefill_chunk_proj`` — the fused chunked-prefill projections.

Wall times are inherently nondeterministic, so profiler output is kept
*out* of the trace and metrics artifacts (whose bytes must reproduce);
it renders its own table and exposes raw totals for programmatic use.
With no profiler attached the backend pays a single ``is None`` check
per stage — the off path stays allocation-free.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..eval.reporting import Table

__all__ = ["HotPathProfiler"]


class HotPathProfiler:
    """Accumulates wall-clock (calls, seconds) per named stage."""

    def __init__(self) -> None:
        self._calls: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}

    # The backend calls these inline — start/stop, not a context
    # manager, to keep per-stage overhead to two perf_counter reads.
    def start(self) -> float:
        return time.perf_counter()

    def stop(self, stage: str, t0: float) -> None:
        dt = time.perf_counter() - t0
        self._calls[stage] = self._calls.get(stage, 0) + 1
        self._seconds[stage] = self._seconds.get(stage, 0.0) + dt

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def stages(self) -> List[str]:
        return sorted(self._calls)

    def calls(self, stage: str) -> int:
        return self._calls.get(stage, 0)

    def seconds(self, stage: str) -> float:
        return self._seconds.get(stage, 0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self._seconds.values())

    def as_rows(self) -> List[Tuple[str, int, float, float]]:
        """(stage, calls, seconds, share) sorted by descending cost."""
        total = self.total_seconds or 1.0
        rows = [
            (stage, self._calls[stage], self._seconds[stage],
             self._seconds[stage] / total)
            for stage in self._calls
        ]
        rows.sort(key=lambda r: (-r[2], r[0]))
        return rows

    def table(self) -> Table:
        t = Table(
            title="hot-path profile (wall clock)",
            headers=["stage", "calls", "total ms", "us/call", "share"],
        )
        for stage, calls, seconds, share in self.as_rows():
            per_call = seconds / calls * 1e6 if calls else 0.0
            t.add_row(stage, str(calls), f"{seconds * 1e3:.2f}",
                      f"{per_call:.1f}", f"{share:.1%}")
        t.add_note(
            "real time.perf_counter seconds around PackedDecodeBackend "
            "stages — separate from the simulated serving clock"
        )
        return t
