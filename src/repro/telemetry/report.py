"""Trace summarization behind the ``repro trace-report`` CLI.

Consumes a Chrome trace-event file written by ``--trace-out`` (any
conforming ``traceEvents`` JSON works) and renders:

* **per-phase breakdown** — wall-of-simulated-time spent in each
  request lifecycle phase (``queued`` / ``prefill`` / ``decode``),
  with counts, totals, means, and maxima;
* **pruning-savings timeline** — the fleet-cumulative
  ``reclaimed_pages`` counter over simulated time (pages cascade
  pruning drained back to the pool mid-generation), as a series table
  and an ASCII chart;
* **preemption / requeue storms** — totals plus the busiest time
  window, so an admission-headroom misconfiguration (the thrash regime
  the ROADMAP documents) is visible at a glance.

``validate_chrome_trace`` doubles as the format-validity gate used by
the tests: every event must carry the Chrome-required keys with the
right types before the report trusts the file.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from ..eval.charts import line_chart
from ..eval.reporting import Table

__all__ = [
    "TraceOverlapError",
    "validate_chrome_trace",
    "load_chrome_trace",
    "trace_report",
]


class TraceOverlapError(ValueError):
    """Two spans on one track overlap in time.

    Every track the engines emit is a sequential lane (one request's
    lifecycle, one pool's events): spans on it must tile, never
    overlap.  An overlap means an unbalanced span or a clock bug
    upstream, and would silently corrupt any per-track time accounting
    built on the trace — latency attribution in particular — so the
    validator rejects the file, naming both offending spans.
    """

#: Request lifecycle phases, in pipeline order.
_PHASES = ("queued", "prefill", "decode")
#: Events counted as scheduler disruption for the storm analysis.
_STORM_EVENTS = ("preempted", "requeued", "replica_drain", "replica_fail")
#: Number of equal time windows the storm analysis buckets events into.
_STORM_BINS = 20


def validate_chrome_trace(trace: dict) -> List[dict]:
    """Check trace-event structure; returns the event list.

    Raises ``ValueError`` on anything Chrome/Perfetto would reject:
    a missing ``traceEvents`` list, events without a phase, phase-
    specific required fields (``ts``/``dur``), or non-integer pid/tid.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("not a Chrome trace: no traceEvents list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"traceEvents[{i}] has no phase ('ph')")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"traceEvents[{i}] has no name")
        if not isinstance(event.get("pid"), int):
            raise ValueError(f"traceEvents[{i}] has no integer pid")
        if ph != "M":
            if not isinstance(event.get("ts"), (int, float)):
                raise ValueError(f"traceEvents[{i}] has no numeric ts")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            raise ValueError(
                f"traceEvents[{i}] is a complete event with no dur"
            )
    _check_track_overlaps(events)
    return events


#: Overlap tolerance in exported microseconds: the exporter rounds a
#: span's ts and dur independently, so two abutting spans can disagree
#: by a float ulp.  1e-3 us (one simulated nanosecond) absorbs that
#: without masking any real overlap.
_OVERLAP_EPS_US = 1e-3


def _check_track_overlaps(events: Sequence[dict]) -> None:
    """Reject overlapping spans on any single (pid, tid) track."""
    tracks: Dict[Tuple[int, int], List[Tuple[float, float, str]]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        start = float(event["ts"])
        tracks.setdefault((event["pid"], event.get("tid", 0)), []).append(
            (start, start + float(event["dur"]), event["name"])
        )
    thread_names = _thread_names(events)
    for key in sorted(tracks):
        spans = sorted(tracks[key])
        for (s0, e0, n0), (s1, e1, n1) in zip(spans, spans[1:]):
            if s1 < e0 - _OVERLAP_EPS_US:
                track = thread_names.get(key) or f"pid {key[0]} tid {key[1]}"
                raise TraceOverlapError(
                    f"overlapping spans on track {track!r}: "
                    f"{n0!r} [{s0}us..{e0}us] overlaps "
                    f"{n1!r} [{s1}us..{e1}us]"
                )


def _thread_names(events: Sequence[dict]) -> Dict[Tuple[int, int], str]:
    names: Dict[Tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[(event["pid"], event.get("tid", 0))] = event.get(
                "args", {}
            ).get("name", "?")
    return names


def load_chrome_trace(path: str) -> List[dict]:
    """Read and validate a trace file; returns its events."""
    with open(path) as fh:
        try:
            trace = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    return validate_chrome_trace(trace)


def _process_names(events: Sequence[dict]) -> Dict[int, str]:
    names: Dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event["pid"]] = event.get("args", {}).get("name", "?")
    return names


def _phase_table(events: Sequence[dict]) -> Table:
    spans: Dict[str, List[float]] = {}
    outcomes: Dict[str, Dict[str, int]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        name = event["name"]
        spans.setdefault(name, []).append(float(event["dur"]))
        outcome = event.get("args", {}).get("outcome")
        if outcome:
            counts = outcomes.setdefault(name, {})
            counts[outcome] = counts.get(outcome, 0) + 1
    t = Table(
        title="per-phase time breakdown (simulated)",
        headers=["phase", "spans", "total ms", "mean ms", "max ms",
                 "share", "outcomes"],
    )
    ordered = [p for p in _PHASES if p in spans]
    ordered += sorted(set(spans) - set(_PHASES))
    grand_total = sum(sum(d) for d in spans.values()) or 1.0
    for name in ordered:
        durs = spans[name]
        total = sum(durs)
        rendered = ", ".join(
            f"{k}={v}" for k, v in sorted(outcomes.get(name, {}).items())
        )
        t.add_row(
            name, str(len(durs)), f"{total / 1e3:.3f}",
            f"{total / len(durs) / 1e3:.3f}", f"{max(durs) / 1e3:.3f}",
            f"{total / grand_total:.1%}", rendered or "-",
        )
    if not spans:
        t.add_note("trace contains no phase spans")
    t.add_note("span durations are simulated-clock; ts unit is us")
    return t


def _savings_series(
    events: Sequence[dict],
) -> Tuple[List[float], List[float]]:
    """Fleet-cumulative reclaimed pages over simulated time.

    Each process's ``kv_pool`` counter reports *its* cumulative
    ``reclaimed_pages``; the fleet series carries the sum of every
    process's last-known value at each sample point.
    """
    last: Dict[int, float] = {}
    ts: List[float] = []
    totals: List[float] = []
    samples = [
        e for e in events
        if e.get("ph") == "C" and e["name"] == "kv_pool"
        and "reclaimed_pages" in e.get("args", {})
    ]
    for event in sorted(samples, key=lambda e: (e["ts"], e["pid"])):
        last[event["pid"]] = float(event["args"]["reclaimed_pages"])
        ts.append(float(event["ts"]) / 1e3)  # ms
        totals.append(sum(last.values()))
    return ts, totals


def _savings_section(events: Sequence[dict]) -> str:
    ts, totals = _savings_series(events)
    if not ts:
        return "pruning-savings timeline: no kv_pool counter samples\n"
    t = Table(
        title="pruning savings (pages reclaimed over time)",
        headers=["metric", "value"],
    )
    t.add_row("samples", str(len(ts)))
    t.add_row("first reclaim (ms)", next(
        (f"{x:.3f}" for x, y in zip(ts, totals) if y > 0), "never"
    ))
    t.add_row("final pages reclaimed", f"{totals[-1]:.0f}")
    lines = [t.render()]
    if totals[-1] > 0 and len(ts) > 1:
        lines.append("")
        lines.append(line_chart(
            ts, totals,
            title="cumulative KV pages reclaimed by pruning",
            x_label="ms", y_label="pages",
        ))
    return "\n".join(lines) + "\n"


def _storm_table(events: Sequence[dict]) -> Table:
    hits = [
        e for e in events
        if e.get("ph") == "i" and e["name"] in _STORM_EVENTS
    ]
    t = Table(
        title="preemption / requeue storms",
        headers=["event", "count", "peak window", "window at (ms)"],
    )
    if not hits:
        t.add_note("no preemption, requeue, or drain events in trace")
        return t
    t_max = max(float(e["ts"]) for e in hits) or 1.0
    width = t_max / _STORM_BINS
    for name in _STORM_EVENTS:
        stamps = [float(e["ts"]) for e in hits if e["name"] == name]
        if not stamps:
            continue
        bins = [0] * _STORM_BINS
        for ts in stamps:
            bins[min(int(ts / width), _STORM_BINS - 1)] += 1
        peak = max(bins)
        at = bins.index(peak) * width / 1e3
        t.add_row(name, str(len(stamps)), str(peak), f"{at:.3f}")
    t.add_note(
        f"peak window = most events in any of {_STORM_BINS} equal "
        f"slices of the trace"
    )
    return t


def trace_report(path: str) -> str:
    """Render the full trace summary for one trace file."""
    events = load_chrome_trace(path)
    processes = _process_names(events)
    n_spans = sum(1 for e in events if e.get("ph") == "X")
    n_instants = sum(1 for e in events if e.get("ph") == "i")
    n_counters = sum(1 for e in events if e.get("ph") == "C")
    header = Table(
        title=f"trace report — {path}",
        headers=["metric", "value"],
    )
    header.add_row("processes", ", ".join(
        processes[pid] for pid in sorted(processes)
    ) or "-")
    header.add_row("spans / instants / counters",
                   f"{n_spans} / {n_instants} / {n_counters}")
    sections = [
        header.render(),
        _phase_table(events).render(),
        _savings_section(events).rstrip("\n"),
        _storm_table(events).render(),
    ]
    return "\n\n".join(sections) + "\n"
