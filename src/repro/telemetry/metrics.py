"""Metrics registry: counters, gauges, histograms, and time series.

The registry follows the Prometheus data model — named metrics with a
label set, three instrument types — but is sampled on the *simulated*
clock, so the exported artifacts are deterministic:

* :meth:`MetricsRegistry.to_jsonl` — the per-step time series (one JSON
  object per engine step per emitter) for dashboards and offline
  analysis;
* :meth:`MetricsRegistry.prometheus_text` — the end-of-run state of
  every instrument in the Prometheus text exposition format, so a
  scrape endpoint (or just a file diff) sees the familiar
  ``name{label="..."} value`` lines.

Instruments are get-or-create: ``registry.counter("repro_x_total",
engine="replica0")`` returns the same :class:`Counter` every call, so
emitters never need to coordinate registration.  All mutation is plain
``float``/``int`` arithmetic — no allocation beyond the first call —
and a disabled telemetry facade never constructs a registry at all, so
the hot path stays allocation-free when observability is off.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


def _fmt_number(value: float) -> str:
    """Deterministic Prometheus-style number rendering."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_int = int(value)
    if as_int == value:
        return str(as_int)
    return repr(value)


def _label_suffix(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


@dataclass
class Counter:
    """Monotonically increasing count (`..._total` by convention)."""

    name: str
    labels: Tuple[Tuple[str, str], ...] = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down (batch size, occupancy)."""

    name: str
    labels: Tuple[Tuple[str, str], ...] = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket always
    exists.  ``bucket_counts[i]`` counts observations ``<= buckets[i]``
    *non*-cumulatively in storage; the exposition renders the standard
    cumulative ``le`` series plus ``_sum`` and ``_count``.
    """

    name: str
    buckets: Tuple[float, ...]
    labels: Tuple[Tuple[str, str], ...] = ()
    bucket_counts: List[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Prometheus-style estimated q-quantile (``0 <= q <= 1``).

        Linearly interpolates within the bucket holding the target
        rank, assuming observations spread uniformly across it — the
        standard ``histogram_quantile()`` estimate, computed the same
        deterministic way every run.  The first bucket's lower bound is
        0 (latencies and sizes are non-negative here); a rank landing
        in the ``+Inf`` bucket reports the highest finite bound, the
        best upper estimate a bounded histogram can give.  An empty
        histogram returns NaN — the quantile is *unknown*, not zero —
        which the standard renderers show as ``n/a`` (tables, via
        :func:`repro.serving.stats.format_quantiles`) or ``null``
        (JSON, via ``_null_if_nan``), matching the serving stats'
        ``_percentile`` convention.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                if i >= len(self.buckets):
                    # +Inf bucket: no finite upper edge to interpolate
                    # toward; report the highest finite bound (or NaN
                    # when the histogram has none at all).
                    return self.buckets[-1] if self.buckets else float("nan")
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = self.buckets[i]
                fraction = (target - cumulative) / n
                return lower + (upper - lower) * fraction
            cumulative += n
        return self.buckets[-1] if self.buckets else float("nan")


class MetricsRegistry:
    """Get-or-create instrument registry plus the step time series."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}
        #: Per-step samples appended by emitters (dicts with at least a
        #: ``t`` key); exported verbatim as JSONL, in emission order.
        self.samples: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: Dict[str, str], **kwargs):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=name, labels=key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float], **labels: str
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=tuple(buckets))

    # ------------------------------------------------------------------
    # Time series
    # ------------------------------------------------------------------
    def record_sample(self, sample: Dict[str, object]) -> None:
        """Append one time-series row (must carry a ``t`` key)."""
        if "t" not in sample:
            raise ValueError("metric samples must carry a 't' timestamp")
        self.samples.append(sample)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The time series as JSON Lines (one row per sample)."""
        return "".join(
            json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
            for row in self.samples
        )

    def prometheus_text(self) -> str:
        """End-of-run instrument state, Prometheus text exposition.

        Deterministic: metrics sort by (name, labels) and numbers render
        through one fixed formatter, so two identical runs produce
        byte-identical dumps.
        """
        by_name: Dict[str, List[object]] = {}
        for (name, _), metric in sorted(self._metrics.items()):
            by_name.setdefault(name, []).append(metric)
        lines: List[str] = []
        for name, metrics in by_name.items():
            kind = type(metrics[0]).__name__.lower()
            lines.append(f"# TYPE {name} {kind}")
            for metric in metrics:
                suffix = _label_suffix(metric.labels)
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, count in zip(
                        metric.buckets, metric.bucket_counts
                    ):
                        cumulative += count
                        le = _label_suffix(
                            metric.labels + (("le", _fmt_number(bound)),)
                        )
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    cumulative += metric.bucket_counts[-1]
                    le = _label_suffix(metric.labels + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                    lines.append(
                        f"{name}_sum{suffix} {_fmt_number(metric.sum)}"
                    )
                    lines.append(f"{name}_count{suffix} {metric.count}")
                else:
                    lines.append(
                        f"{name}{suffix} {_fmt_number(metric.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
