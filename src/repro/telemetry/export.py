"""Exporters: Chrome trace-event JSON, metrics JSONL, Prometheus text.

The Chrome trace-event format (also consumed by Perfetto's legacy
importer) is a JSON object with a ``traceEvents`` list.  The exporter
maps the tracer's model onto it:

* each ``process`` (engine/replica name, ``fleet``) becomes a pid with
  a ``process_name`` metadata event;
* each ``track`` within a process (one per request, plus ``pool`` /
  ``router`` / ``scheduler``) becomes a tid with a ``thread_name``
  metadata event;
* spans export as ``"X"`` complete events (``ts``/``dur`` in
  microseconds of simulated time), instants as ``"i"`` thread-scoped
  instant events, counters as ``"C"`` counter events whose args render
  as stacked series in the viewer.

Everything serializes with sorted keys, fixed separators, and a
trailing newline, so a deterministic run produces a byte-identical
file — the property the determinism tests pin.

``open_sink``/``write_text`` implement the CLI's ``PATH | -`` contract:
``-`` writes to stdout instead of a file.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Tuple

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "chrome_trace",
    "chrome_trace_json",
    "write_text",
    "metrics_jsonl",
    "prometheus_text",
]

#: Microseconds per simulated second (Chrome ``ts`` unit).
_US = 1e6


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer's events as a Chrome trace-event dict.

    pid/tid numbers are assigned in first-appearance order, which is
    deterministic for a deterministic run; metadata events naming every
    process and thread come first, then the payload events in emission
    order.
    """
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    meta: List[dict] = []
    payload: List[dict] = []

    def pid_of(process: str) -> int:
        pid = pids.get(process)
        if pid is None:
            pid = len(pids) + 1
            pids[process] = pid
            meta.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
            meta.append({
                "ph": "M", "name": "process_sort_index", "pid": pid,
                "tid": 0, "args": {"sort_index": pid},
            })
        return pid

    def tid_of(process: str, track: str) -> int:
        pid = pid_of(process)
        key = (process, track)
        tid = tids.get(key)
        if tid is None:
            tid = sum(1 for (p, _) in tids if p == process) + 1
            tids[key] = tid
            meta.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        return tid

    for event in tracer.events:
        args = event.args_dict
        if event.kind == "span":
            payload.append({
                "ph": "X", "name": event.name, "cat": "sim",
                "pid": pid_of(event.process),
                "tid": tid_of(event.process, event.track),
                "ts": event.t * _US, "dur": event.dur * _US,
                "args": args,
            })
        elif event.kind == "instant":
            payload.append({
                "ph": "i", "name": event.name, "cat": "sim", "s": "t",
                "pid": pid_of(event.process),
                "tid": tid_of(event.process, event.track),
                "ts": event.t * _US, "args": args,
            })
        elif event.kind == "counter":
            payload.append({
                "ph": "C", "name": event.name, "cat": "sim",
                "pid": pid_of(event.process), "tid": 0,
                "ts": event.t * _US, "args": args,
            })
        else:  # pragma: no cover - Tracer only emits the three kinds
            raise ValueError(f"unknown event kind {event.kind!r}")

    return {
        "displayTimeUnit": "ms",
        "metadata": {
            "clock": "simulated",
            "tool": "repro.telemetry",
        },
        "traceEvents": meta + payload,
    }


def chrome_trace_json(tracer: Tracer) -> str:
    """Byte-deterministic serialization of :func:`chrome_trace`."""
    return json.dumps(
        chrome_trace(tracer), sort_keys=True, separators=(",", ":")
    ) + "\n"


def metrics_jsonl(registry: MetricsRegistry) -> str:
    """The registry's time series as JSON Lines."""
    return registry.to_jsonl()


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry's instruments in Prometheus text exposition."""
    return registry.prometheus_text()


def write_text(path: str, text: str, label: str) -> None:
    """Write ``text`` to ``path``, with ``-`` meaning stdout.

    File writes are announced on stdout (mirroring ``--stats-json``);
    stdout writes are emitted verbatim so the artifact stays parseable
    when piped.
    """
    if path == "-":
        sys.stdout.write(text)
        return
    with open(path, "w") as fh:
        fh.write(text)
    print(f"{label} written to {path}")
