"""repro.telemetry — deterministic observability for the serving fleet.

Package guide
=============

The serving stack (PRs 1-5) runs on a simulated clock, which makes a
run a *reproducible schedule*: the same trace in always yields the same
admissions, preemptions, and token streams out.  This package turns
that property into observability artifacts that are themselves
reproducible:

``tracer``
    :class:`Tracer` — span/instant/counter events on the simulated
    timeline.  The serving engine emits each request's lifecycle
    (``queued`` → ``admitted`` → ``prefill`` → ``promoted`` →
    ``decode`` → ``finished`` / ``preempted`` / ``drained``), the KV
    pool emits alloc/evict/preempt events through its observer hook,
    the cluster router emits per-replica scored decisions, and the
    sharded ledger emits drain/fail transitions.

``metrics``
    :class:`MetricsRegistry` — Prometheus-style counters, gauges, and
    histograms plus a per-step time series (live batch size, pool
    occupancy, pruning savings, step FLOPs, backlog).  Exports as JSONL
    (:func:`metrics_jsonl`) and text exposition
    (:func:`prometheus_text`).

``profiler``
    :class:`HotPathProfiler` — the one *wall-clock* component,
    instrumenting the ``PackedDecodeBackend`` stages.  Kept out of the
    deterministic artifacts on purpose.

``export``
    :func:`chrome_trace_json` — Chrome trace-event / Perfetto JSON,
    byte-identical across identical runs.

``report``
    :func:`trace_report` — the ``repro trace-report`` summarizer:
    per-phase time breakdown, pruning-savings timeline, preemption and
    requeue storms.

The facade
==========

Emitters take a single :class:`Telemetry` object::

    tel = Telemetry(trace=True, metrics=True, profile=False)
    engine = ServingEngine(..., telemetry=tel)
    ...
    write_text("trace.json", chrome_trace_json(tel.tracer), "trace")

With telemetry off (the default everywhere), emitters receive
:data:`NULL_TELEMETRY`, whose ``active`` flag is ``False``.  Every
hot-path emission site is guarded by that flag *before* building any
event payload, so disabled telemetry costs one attribute check and
allocates nothing — the inertness tests pin bit-identical token
streams with telemetry on vs. off.
"""

from __future__ import annotations

from typing import Optional

from .export import (
    chrome_trace,
    chrome_trace_json,
    metrics_jsonl,
    prometheus_text,
    write_text,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import HotPathProfiler
from .report import (
    TraceOverlapError,
    load_chrome_trace,
    trace_report,
    validate_chrome_trace,
)
from .tracer import TraceEvent, Tracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "Tracer",
    "TraceOverlapError",
    "TraceEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "HotPathProfiler",
    "chrome_trace",
    "chrome_trace_json",
    "metrics_jsonl",
    "prometheus_text",
    "write_text",
    "validate_chrome_trace",
    "load_chrome_trace",
    "trace_report",
]


class Telemetry:
    """Bundle of sinks an emitter writes to.

    Each component is ``None`` when its flag is off; ``active`` is the
    single guard hot paths check before emitting trace events or metric
    samples.  The profiler is intentionally excluded from ``active`` —
    it hooks the backend directly and does not affect event emission.
    """

    __slots__ = ("tracer", "metrics", "profiler")

    def __init__(
        self,
        trace: bool = True,
        metrics: bool = True,
        profile: bool = False,
    ) -> None:
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )
        self.profiler: Optional[HotPathProfiler] = (
            HotPathProfiler() if profile else None
        )

    @property
    def active(self) -> bool:
        """True when trace events or metric samples should be emitted."""
        return self.tracer is not None or self.metrics is not None

    def __repr__(self) -> str:
        return (
            f"Telemetry(trace={self.tracer is not None}, "
            f"metrics={self.metrics is not None}, "
            f"profile={self.profiler is not None})"
        )


#: Shared inert instance — the default ``telemetry`` everywhere.
NULL_TELEMETRY = Telemetry(trace=False, metrics=False, profile=False)
