"""Deterministic span/event tracing keyed to the simulated clock.

The serving stack runs on a *simulated* clock
(:class:`repro.serving.stats.SimulatedClock`), so every timestamp the
tracer records is a deterministic function of the trace being served —
two identical runs emit byte-identical trace files, which is what makes
traces testable artifacts instead of debugging one-offs.

Three event shapes, mirroring the Chrome trace-event model the exporter
(:mod:`repro.telemetry.export`) targets:

* **instant** — a point event: a request was admitted, a page was
  evicted, a router decision landed;
* **span** — a closed interval: one request's ``queued`` / ``prefill``
  / ``decode`` phase, with its outcome (``finished`` / ``preempted`` /
  ``drained``) in the args;
* **counter** — a sampled time series: live batch size, pool pages,
  pruning savings — rendered as stacked counter tracks by Chrome's
  ``about:tracing`` / Perfetto.

Events carry a ``process`` (the engine or replica name, or ``fleet``
for cluster-level events) and a ``track`` (one per request, plus the
``pool`` / ``router`` / ``scheduler`` bookkeeping tracks), which the
exporter maps onto Chrome's pid/tid axes so a multi-replica run renders
as one lane per replica with one row per request.

The tracer itself never touches the wall clock and never samples
anything on its own — emitters (the serving engine, the cluster driver,
the pool observer hooks) push events at the simulated times they
happen.  Wall-clock hot-path costs live in the separate
:class:`~repro.telemetry.profiler.HotPathProfiler`, deliberately *not*
in the trace, so trace bytes stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

__all__ = ["TraceEvent", "Tracer"]

#: Event kinds the tracer records (see module docstring).
EVENT_KINDS = ("instant", "span", "counter")


@dataclass(frozen=True)
class TraceEvent:
    """One trace event on the simulated timeline.

    Attributes:
        kind: ``"instant"``, ``"span"``, or ``"counter"``.
        name: event name (``admitted``, ``prefill``, ``kv_pool``, ...).
        t: simulated-clock timestamp in seconds (span start).
        process: emitting engine/replica name (``fleet`` for
            cluster-global events).
        track: logical row within the process — one per request
            (``req 7``) plus bookkeeping tracks (``pool``, ``router``,
            ``scheduler``).  Counters ignore the track.
        dur: span duration in simulated seconds (0 for non-spans).
        args: JSON-serializable payload, stored as a sorted item tuple
            so events hash/compare deterministically.
    """

    kind: str
    name: str
    t: float
    process: str
    track: str
    dur: float = 0.0
    args: Tuple[Tuple[str, object], ...] = ()

    @property
    def args_dict(self) -> Dict[str, object]:
        return dict(self.args)


def _freeze_args(args: Mapping[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(args.items()))


@dataclass
class Tracer:
    """Append-only event log over the simulated clock.

    One tracer spans one run — in cluster mode every replica engine
    shares it, labelling events with its own ``process`` name.  Events
    are kept in emission order, which for a deterministic run is itself
    deterministic; the Chrome exporter preserves it (viewers sort by
    timestamp anyway).
    """

    events: List[TraceEvent] = field(default_factory=list)

    def instant(
        self, name: str, t: float, process: str, track: str, **args
    ) -> None:
        """Record a point event at simulated time ``t``."""
        self.events.append(TraceEvent(
            kind="instant", name=name, t=float(t), process=process,
            track=track, args=_freeze_args(args),
        ))

    def span(
        self,
        name: str,
        start: float,
        end: float,
        process: str,
        track: str,
        **args,
    ) -> None:
        """Record a closed interval ``[start, end]`` (simulated s)."""
        start, end = float(start), float(end)
        if end < start:
            raise ValueError(
                f"span {name!r} ends before it starts ({end} < {start})"
            )
        self.events.append(TraceEvent(
            kind="span", name=name, t=start, process=process, track=track,
            dur=end - start, args=_freeze_args(args),
        ))

    def counter(self, name: str, t: float, process: str, **values) -> None:
        """Record one sample of a (multi-series) counter track."""
        self.events.append(TraceEvent(
            kind="counter", name=name, t=float(t), process=process,
            track="counters", args=_freeze_args(values),
        ))

    # ------------------------------------------------------------------
    # Read-side helpers (tests and the trace report)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def named(self, name: str) -> List[TraceEvent]:
        """Every event with the given name, in emission order."""
        return [e for e in self.events if e.name == name]

    @property
    def processes(self) -> List[str]:
        """Distinct process names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.process, None)
        return list(seen)
