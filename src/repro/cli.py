"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro.cli list                 # show available experiments
    python -m repro.cli run fig14 table4     # run specific experiments
    python -m repro.cli run all              # everything (a few minutes)
    python -m repro.cli serve --mode both    # continuous-batching serving
    python -m repro.cli serve-cluster --replicas 3 --policy pruning_aware

Each experiment prints the same rows the paper's table or figure
reports, with the paper's numbers quoted in the table notes.  The
``serve`` subcommand runs a synthetic Poisson arrival trace through the
continuous-batching engine (:mod:`repro.serving`) and prints its
:class:`~repro.serving.ServingStats` report.  Its defaults match the
flag defaults below: 16 requests arriving at 200 req/s (simulated),
served with chunked prefill (32-token chunks; pass ``--prefill-chunk
0`` for the stalling monolithic prefill).  ``serve-cluster`` routes
the trace across N replicas (:mod:`repro.cluster`) with a pluggable
policy over a sharded KV pool; ``--drain-at TIME:REPLICA`` retires a
replica mid-run and requeues its in-flight requests through the
router, ``--fail-at`` does the same while marking the replica failed
in the fleet report, and ``--recover-at`` rejoins a retired replica
(its empty shard re-registers with the ledger and it takes traffic
again — drain -> recover -> fail sequences are validated as one
schedule).  Chaos testing layers on top: ``--chaos-seed N`` generates
a deterministic fault plan (replica crash/recover cycles, transient
straggler windows, KV-page corruption strikes) at the
``--chaos-profile`` intensity (light / moderate / heavy), arms
heartbeat failure detection with the router's circuit breaker, and
enables the graceful-degradation ladder (shed best-effort load, then
escalate queued requests to a more aggressive cascade schedule,
before the preemption backstop).  ``--deadline-ms`` fails requests
cleanly past a per-request deadline, and ``--retry-budget`` bounds
placement retry-with-exponential-backoff when a request momentarily
fits no active replica (budget exhaustion fails the request — never a
dead loop).  See the "Fault tolerance & chaos testing" section of the
serving guide (:mod:`repro.serving`).  Both serving subcommands accept
``--admission optimistic`` (admit against actual pool usage plus
``--headroom-pages``, preempting under pressure with
``--preempt-policy``; see :mod:`repro.serving.preemption`) and
``--stats-json PATH`` to archive the report as machine-readable JSON.

Shared trace/model shape flags: ``--requests`` / ``--rate`` set the
Poisson arrival trace, ``--prompt-len`` and ``--max-new LO HI`` the
per-request token shape, ``--priorities`` the number of scheduling
classes, ``--layers`` the serving model depth, ``--seed`` the
trace/model seed, and ``--token-keep`` the final-layer keep fraction
of the cascade schedule (spatten mode).  Pool geometry comes from
``--pool-kib`` (total budget; ``--replica-budget-kib`` overrides the
even per-replica split in serve-cluster) and ``--page-tokens`` (KV
columns per page).  ``--attention-backend {packed,looped}`` selects
the fused packed decode backend (default) or the per-sequence looped
oracle; ``serve-cluster --traffic {mixed,uniform}`` picks the skewed
per-request schedule mix or plain uniform traffic.  ``--numerics
{exact,fp32,int8}`` picks the decode-path numerics-ladder tier:
``exact`` (default) keeps fp64 bit identity with the looped oracle,
``fp32`` and ``int8`` trade declared accuracy budgets for decode-step
speed on the packed backend (the tier lands in the stats report's
``numerics`` field; see the "Numerics ladder" section of the serving
guide, :mod:`repro.serving`).

``repro lint`` runs the :mod:`repro.analysis` static-analysis pass —
determinism, clock-domain, page-accounting, and doc/schema drift rules
— over the tree (default ``src/repro``), exiting 1 on any unsuppressed
finding.  ``--format json`` switches the console report, ``--out PATH``
archives the JSON report for CI, ``--rules ID,ID`` restricts the run,
and ``--list-rules`` prints the catalog.  Tier-1 and CI gate on it; see
the "Static analysis" section of the serving guide
(:mod:`repro.serving`) for the rule catalog and suppression syntax.

Observability (``repro.telemetry``) is off by default and adds zero
overhead until asked for.  Both serving subcommands take:

* ``--trace-out PATH`` — Chrome trace-event JSON of the whole run
  (request lifecycle spans, pool/router/ledger instants, batch and KV
  counter tracks); open in ``chrome://tracing`` or Perfetto, or feed
  it to ``repro trace-report``.
* ``--metrics-out PATH`` — JSONL time-series, one sample per engine
  step (batch size, pool occupancy, pruning savings, step FLOPs,
  backlog).
* ``--prom-out PATH`` — final counter/gauge/histogram state in
  Prometheus text exposition format.
* ``--profile`` — wall-clock hot-path profile of the packed decode
  backend, printed after the report (wall time, *not* simulated time;
  excluded from the deterministic artifacts above).
* ``--audit-every N`` — run the KV pool's invariant audit every N
  engine steps (fleet-ledger audit in serve-cluster), surfaced as the
  ``repro_pool_audits_total`` counter.

Every PATH accepts ``-`` for stdout (single-mode runs only — ``serve
--mode both`` writes one file per mode by suffixing the mode before
the extension: ``trace.json`` becomes ``trace.dense.json`` and
``trace.spatten.json``).  ``--stats-json -`` streams the report JSON
to stdout the same way.  Trace and metrics files are timestamped by
the *simulated* clock, so identical runs produce byte-identical
artifacts.  ``repro trace-report PATH`` renders a per-phase time
breakdown, the pruning-savings timeline, and a preemption/requeue
storm table from a trace file without a browser.

SLOs and latency attribution (:mod:`repro.insight`): both serving
subcommands accept repeated ``--slo CLASS:METRIC:pPCT:TARGET_MS``
objectives (e.g. ``--slo 0:ttft:p95:150 --slo all:e2e:p99:2000``)
evaluated on the simulated clock, with ``--slo-window-ms`` setting the
tumbling window for error-budget burn-rate accounting; attainment
lands in the stats report's ``slo`` section without perturbing any
other field.  ``repro slo-report TRACE --slo SPEC`` evaluates the same
objectives *offline* over a ``--trace-out`` file and prints the exact
critical-path latency attribution (every request's end-to-end latency
decomposed bit-exactly into queue wait, prefill, decode,
preempt/quarantine/drain discard + requeue, and retry backoff) — exit
1 when an objective is missed.  ``repro bench-compare`` judges each
benchmark's newest history record (``benchmarks/results/history/
*.jsonl``, appended by the bench smoke suite) against the median of
its earlier records with noise-aware thresholds, exiting 1 on
regression; ``--history DIR`` points it elsewhere.  Both subcommands
share the ``--format`` / ``--out`` conventions of ``repro lint``.  See
the "SLOs, latency attribution & regression tracking" section of the
serving guide (:mod:`repro.serving`).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from .eval import experiments as perf
from .eval import quality_experiments as quality
from .eval.charts import bar_chart, line_chart


def _fig19_with_chart():
    result = perf.fig19_design_space()
    print(result.table)
    print()
    print(line_chart(
        list(result.parallelism_gflops.keys()),
        list(result.parallelism_gflops.values()),
        title="top-k parallelism vs GFLOPS (saturates at 16)",
        x_label="parallelism", y_label="GFLOPS", log_x=True,
    ))
    return result


def _fig20_with_chart():
    result = perf.fig20_speedup_breakdown()
    print(result.table)
    print()
    print(bar_chart(
        dict(zip(result.stage_names, result.cumulative_speedup)),
        title="cumulative speedup over TITAN Xp (log scale)",
        log_scale=True, unit="x",
    ))
    return result


def _fig21_with_chart():
    result = quality.fig21_accuracy_tradeoff()
    print(result.table)
    print()
    print(line_chart(
        result.token_ratios, [l * 100 for l in result.token_losses],
        title="token pruning ratio vs accuracy delta (%)",
        x_label="ratio", y_label="%",
    ))
    return result


def _table_experiment(fn: Callable):
    def run():
        result = fn()
        print(result if not hasattr(result, "table") else result.table)
        if hasattr(result, "fig17_table"):
            print()
            print(result.fig17_table)
        return result

    return run


EXPERIMENTS: Dict[str, Callable] = {
    "headline": _table_experiment(perf.headline_reductions),
    "fig01": _table_experiment(quality.fig01_cascade_pruning),
    "fig02": _table_experiment(perf.fig02_latency_breakdown),
    "fig07": _table_experiment(quality.fig07_quant_error),
    "table1": _table_experiment(perf.table1_architecture),
    "table2": _table_experiment(perf.table2_power),
    "fig13": _table_experiment(perf.fig13_breakdowns),
    "fig14": _table_experiment(perf.fig14_speedup_energy),
    "table3": _table_experiment(perf.table3_prior_art),
    "table4": _table_experiment(perf.table4_e2e_breakdown),
    "fig15": _table_experiment(perf.fig15_e2e_speedup),
    "fig16": _table_experiment(perf.fig16_hat_codesign),
    "fig18": _table_experiment(perf.fig18_roofline),
    "fig19": _fig19_with_chart,
    "fig20": _fig20_with_chart,
    "fig21": _fig21_with_chart,
    "fig22": _table_experiment(quality.fig22_visualization),
    "fig23": _table_experiment(quality.fig23_importance_map),
    "topk": _table_experiment(perf.topk_engine_comparison),
    "ablation": _table_experiment(perf.ablation_pruning_components),
    "gpu-pruning": _table_experiment(perf.gpu_token_pruning),
}


def serve_command(args) -> int:
    """Serve a synthetic arrival trace with the continuous-batching engine."""
    from .serving import PoolExhausted

    try:
        return _serve(args)
    except (ValueError, PoolExhausted) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2


def trace_report_command(args) -> int:
    """Render an analysis report from a saved Chrome trace file."""
    from .telemetry import trace_report

    try:
        print(trace_report(args.path))
    except (OSError, ValueError) as exc:
        print(f"trace-report: {exc}", file=sys.stderr)
        return 2
    return 0


def slo_report_command(args) -> int:
    """Evaluate SLOs + latency attribution over a saved trace file."""
    import json

    from .insight import SLOPolicy, TraceAttribution, timelines_from_events
    from .telemetry import load_chrome_trace

    try:
        policy = SLOPolicy.from_specs(
            args.slo, window_s=args.slo_window_ms / 1e3
        )
        events = load_chrome_trace(args.path)
        timelines = timelines_from_events(events)
        makespan_us = max(
            (tl.end_us for tl in timelines.values()
             if tl.end_us is not None),
            default=0,
        )
        report = policy.evaluate_timelines(timelines, float(makespan_us) / 1e6)
        attribution = TraceAttribution.from_timelines(timelines)
    except (OSError, ValueError) as exc:
        print(f"slo-report: {exc}", file=sys.stderr)
        return 2
    doc = {"slo": report.to_dict(), "attribution": attribution.to_dict()}
    if args.format == "json":
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(report.render())
        print()
        print(attribution.render())
    if args.out:
        # The archived report is always the JSON rendering (CI artifact).
        with open(args.out, "w") as fh:
            fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return 0 if report.attained is not False else 1


def bench_compare_command(args) -> int:
    """Gate on benchmark history: latest run vs median of earlier runs."""
    import json

    from .insight import compare_all

    try:
        report = compare_all(args.history, args.names or None)
    except (OSError, ValueError) as exc:
        print(f"bench-compare: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(json.dumps(report.to_dict(), indent=2, sort_keys=True)
                     + "\n")
    return report.exit_code


def serve_cluster_command(args) -> int:
    """Serve a trace across N replicas behind the cluster router."""
    from .serving import PoolExhausted

    try:
        return _serve_cluster(args)
    except (ValueError, PoolExhausted) as exc:
        print(f"serve-cluster: {exc}", file=sys.stderr)
        return 2


def lint_command(args) -> int:
    """Run the repro.analysis static lint pass over the tree."""
    from .analysis import (
        LintEngine,
        all_rule_classes,
        render_json,
        render_text,
    )

    if args.list_rules:
        for rule_id, cls in all_rule_classes().items():
            print(f"{rule_id:24s} [{cls.family}] {cls.description}")
        return 0
    try:
        rules = (
            [r for r in args.rules.split(",") if r.strip()]
            if args.rules else None
        )
        engine = LintEngine(rules=rules)
        result = engine.run(args.paths or None)
    except (OSError, ValueError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    rendered = (
        render_json(result) if args.format == "json" else
        render_text(result) + "\n"
    )
    sys.stdout.write(rendered)
    if args.out:
        # The archived report is always the JSON rendering — CI uploads
        # it as a build artifact regardless of the console format.
        with open(args.out, "w") as fh:
            fh.write(render_json(result))
    return result.exit_code


def _telemetry_requested(args) -> bool:
    return bool(
        args.trace_out or args.metrics_out or args.prom_out or args.profile
        or args.audit_every
    )


def _build_telemetry(args):
    """Construct a Telemetry sink from the CLI flags, or None when off.

    ``--audit-every`` alone does not build one: the audit cadence works
    telemetry-free (the engine counts steps regardless), it just loses
    its counter.
    """
    if not (args.trace_out or args.metrics_out or args.prom_out
            or args.profile):
        return None
    from .telemetry import Telemetry

    return Telemetry(
        trace=bool(args.trace_out),
        metrics=bool(args.metrics_out or args.prom_out),
        profile=bool(args.profile),
    )


def _build_slo(args):
    """Construct an SLOPolicy from repeated --slo flags, or None."""
    if not args.slo:
        return None
    from .insight import SLOPolicy

    return SLOPolicy.from_specs(args.slo, window_s=args.slo_window_ms / 1e3)


def _sink_path(path, mode, multi_mode: bool):
    """Resolve one artifact path for one mode of a (possibly 2-mode) run.

    Multi-mode runs suffix the mode before the extension
    (``trace.json`` -> ``trace.dense.json``); ``-`` (stdout) cannot be
    shared by two modes and is rejected up front by
    :func:`_check_stdout_sinks`.
    """
    if path is None or not multi_mode:
        return path
    root, _, ext = path.rpartition(".")
    return f"{root}.{mode}.{ext}" if root else f"{path}.{mode}"


def _check_stdout_sinks(args, multi_mode: bool) -> None:
    if not multi_mode:
        return
    stdout_flags = [
        flag
        for flag, value in (
            ("--trace-out", args.trace_out),
            ("--metrics-out", args.metrics_out),
            ("--prom-out", args.prom_out),
            ("--stats-json", args.stats_json),
        )
        if value == "-"
    ]
    if stdout_flags:
        raise ValueError(
            f"{', '.join(stdout_flags)}: '-' (stdout) only works with a "
            f"single mode; --mode both would interleave two documents "
            f"(pick --mode dense or --mode spatten, or give a file path)"
        )


def _write_telemetry(args, telemetry, mode, multi_mode: bool) -> None:
    """Flush one run's telemetry artifacts to their sinks."""
    if telemetry is None:
        return
    from .telemetry import (
        chrome_trace_json,
        metrics_jsonl,
        prometheus_text,
        write_text,
    )

    if args.trace_out:
        write_text(
            _sink_path(args.trace_out, mode, multi_mode),
            chrome_trace_json(telemetry.tracer),
            "trace",
        )
    if args.metrics_out:
        write_text(
            _sink_path(args.metrics_out, mode, multi_mode),
            metrics_jsonl(telemetry.metrics),
            "metrics",
        )
    if args.prom_out:
        write_text(
            _sink_path(args.prom_out, mode, multi_mode),
            prometheus_text(telemetry.metrics),
            "prometheus metrics",
        )
    if args.profile and telemetry.profiler is not None:
        print()
        print(telemetry.profiler.table())


def _serve(args) -> int:
    from .config import GPT2_SMALL, PruningConfig
    from .serving import KVMemoryPool, ServingEngine
    from .workloads import (
        accuracy_scale_config,
        build_task_model,
        build_vocabulary,
        make_lm_corpus,
        synthetic_request_trace,
    )

    vocab = build_vocabulary(size=512, n_classes=4, seed=args.seed)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=args.layers, d_model=128, n_heads=8,
        max_seq_len=max(256, args.prompt_len + args.max_new[1] + 1),
    )
    model, _ = build_task_model(config, vocab, "lm", seed=args.seed)
    corpus = make_lm_corpus(vocab, n_tokens=4096, seed=args.seed + 1)
    requests = synthetic_request_trace(
        corpus,
        n_requests=args.requests,
        rate_per_s=args.rate,
        prompt_len=args.prompt_len,
        max_new_tokens=tuple(args.max_new),
        n_priorities=args.priorities,
        seed=args.seed,
    )
    pruning = PruningConfig(
        token_keep_final=args.token_keep, head_keep_final=0.75, value_keep=0.9
    )
    modes = (
        [("dense", None), ("spatten", pruning)]
        if args.mode == "both"
        else [(args.mode, pruning if args.mode == "spatten" else None)]
    )
    prefill_chunk = args.prefill_chunk if args.prefill_chunk != 0 else None
    multi_mode = len(modes) > 1
    _check_stdout_sinks(args, multi_mode)
    slo = _build_slo(args)
    throughputs = {}
    stats_by_mode = {}
    for mode, mode_pruning in modes:
        pool = KVMemoryPool(
            config, budget_bytes=args.pool_kib * 1024,
            page_tokens=args.page_tokens,
        )
        # One Telemetry per mode: a --mode both run writes one trace /
        # metrics document per mode instead of interleaving them.
        telemetry = _build_telemetry(args)
        engine = ServingEngine(
            model, pool, pruning=mode_pruning, prefill_chunk=prefill_chunk,
            attention_backend=args.attention_backend,
            admission=args.admission,
            numerics=args.numerics,
            preempt_policy=args.preempt_policy,
            headroom_pages=args.headroom_pages,
            telemetry=telemetry,
            audit_every=args.audit_every,
            slo=slo,
        )
        stats = engine.run(requests)
        throughputs[mode] = stats.throughput_tps
        stats_by_mode[mode] = stats
        print()
        print(stats.table())
        _write_telemetry(args, telemetry, mode, multi_mode)
    if len(throughputs) == 2:
        ratio = throughputs["spatten"] / throughputs["dense"]
        print(f"\nspatten/dense throughput at the same pool budget: {ratio:.2f}x")
    if args.stats_json:
        _write_stats_json(
            args.stats_json,
            {mode: stats.to_dict() for mode, stats in stats_by_mode.items()},
        )
    return 0


def _write_stats_json(path: str, payload: dict) -> None:
    import json

    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if path == "-":
        sys.stdout.write(text)
        return
    with open(path, "w") as fh:
        fh.write(text)
    print(f"\nstats written to {path}")


def _parse_retire_events(specs, flag: str):
    """Parse repeated ``TIME:REPLICA`` flags into (time, index) pairs."""
    events = []
    for spec in specs or ():
        try:
            time_s, _, idx_s = spec.partition(":")
            events.append((float(time_s), int(idx_s)))
        except ValueError:
            raise ValueError(
                f"{flag} expects TIME:REPLICA (e.g. 0.05:1), got {spec!r}"
            )
    return events


def _serve_cluster(args) -> int:
    from .cluster import ClusterEngine, ShardedKVPool
    from .config import GPT2_SMALL, PruningConfig
    from .workloads import (
        TrafficClass,
        accuracy_scale_config,
        build_task_model,
        build_vocabulary,
        heterogeneous_request_trace,
        make_lm_corpus,
        synthetic_request_trace,
    )

    if args.replicas < 1:
        raise ValueError("--replicas must be >= 1")
    pruning = PruningConfig(
        token_keep_final=args.token_keep, head_keep_final=0.75, value_keep=0.9
    )
    long_prompt = (
        args.prompt_len if args.traffic == "uniform" else 3 * args.prompt_len
    )
    vocab = build_vocabulary(size=512, n_classes=4, seed=args.seed)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=args.layers, d_model=128, n_heads=8,
        max_seq_len=max(256, long_prompt + args.max_new[1] + 1),
    )
    model, _ = build_task_model(config, vocab, "lm", seed=args.seed)
    corpus = make_lm_corpus(
        vocab, n_tokens=max(4096, 8 * long_prompt), seed=args.seed + 1
    )
    if args.traffic == "uniform":
        requests = synthetic_request_trace(
            corpus,
            n_requests=args.requests,
            rate_per_s=args.rate,
            prompt_len=args.prompt_len,
            max_new_tokens=tuple(args.max_new),
            n_priorities=args.priorities,
            seed=args.seed,
        )
        engine_pruning = pruning if args.mode == "spatten" else None
    else:
        # Skewed mix: mostly cheap heavily-pruned requests, a minority
        # of long dense ones — the trace shape schedule-aware routing
        # is built for.
        classes = [
            TrafficClass(
                "pruned-short", weight=0.75, prompt_len=args.prompt_len,
                max_new_tokens=tuple(args.max_new), pruning=pruning,
            ),
            TrafficClass(
                "dense-long", weight=0.25, prompt_len=long_prompt,
                max_new_tokens=tuple(args.max_new), pruning=None,
            ),
        ]
        requests = heterogeneous_request_trace(
            corpus, classes, n_requests=args.requests, rate_per_s=args.rate,
            seed=args.seed,
        )
        engine_pruning = None  # every request carries its own schedule
    if args.replica_budget_kib:
        pool = ShardedKVPool(
            config,
            replica_budgets_bytes=[args.replica_budget_kib * 1024]
            * args.replicas,
            page_tokens=args.page_tokens,
        )
    else:
        pool = ShardedKVPool(
            config, total_budget_bytes=args.pool_kib * 1024,
            n_replicas=args.replicas, page_tokens=args.page_tokens,
        )
    prefill_chunk = args.prefill_chunk if args.prefill_chunk != 0 else None
    telemetry = _build_telemetry(args)
    fault_plan = None
    heartbeat_timeout_s = None
    degradation = None
    if args.chaos_seed is not None:
        from .faults import FaultPlan
        from .serving import DegradationPolicy

        # Plan horizon: the nominal arrival window plus settle time.
        horizon_s = args.requests / args.rate + 1.0
        fault_plan = FaultPlan.generate(
            args.chaos_seed, args.replicas, horizon_s,
            profile=args.chaos_profile,
        )
        heartbeat_timeout_s = fault_plan.heartbeat_timeout_s
        degradation = DegradationPolicy(
            reprune=PruningConfig(
                token_keep_final=max(0.15, args.token_keep - 0.1),
                head_keep_final=0.625, value_keep=0.9,
            ),
        )
    cluster = ClusterEngine(
        model, pool,
        policy=args.policy,
        pruning=engine_pruning,
        prefill_chunk=prefill_chunk,
        attention_backend=args.attention_backend,
        admission=args.admission,
        numerics=args.numerics,
        preempt_policy=args.preempt_policy,
        headroom_pages=args.headroom_pages,
        drain_events=_parse_retire_events(args.drain_at, "--drain-at"),
        fail_events=_parse_retire_events(args.fail_at, "--fail-at"),
        recover_events=_parse_retire_events(args.recover_at, "--recover-at"),
        fault_plan=fault_plan,
        heartbeat_timeout_s=heartbeat_timeout_s,
        deadline_s=args.deadline_ms / 1e3 if args.deadline_ms else None,
        retry_budget=args.retry_budget,
        degradation=degradation,
        telemetry=telemetry,
        audit_every=args.audit_every,
        slo=_build_slo(args),
    )
    if fault_plan is not None:
        counts = ", ".join(
            f"{kind}={n}" for kind, n in fault_plan.counts().items() if n
        )
        print(f"chaos plan (seed {args.chaos_seed}, "
              f"{args.chaos_profile}): {counts or 'no events'}")
    stats = cluster.run(requests)
    print()
    print(stats.table())
    _write_telemetry(args, telemetry, "cluster", multi_mode=False)
    if args.stats_json:
        _write_stats_json(args.stats_json, stats.to_dict())
    return 0


def _add_serving_flags(parser) -> None:
    """Flags shared by the `serve` and `serve-cluster` subcommands."""
    parser.add_argument("--requests", type=int, default=16,
                        help="number of requests in the trace")
    parser.add_argument("--rate", type=float, default=200.0,
                        help="Poisson arrival rate (req per simulated second)")
    parser.add_argument("--prefill-chunk", type=int, default=32,
                        help="prompt tokens committed per mixed step; 0 runs "
                             "the whole prefill monolithically at admission "
                             "(stalls the live decode batch)")
    parser.add_argument("--attention-backend", choices=("packed", "looped"),
                        default="packed",
                        help="decode attention backend: 'packed' batches "
                             "projections and the dense attention core "
                             "across the live batch (default); 'looped' "
                             "keeps the per-sequence oracle (bit-identical "
                             "tokens, slower wall clock)")
    parser.add_argument("--numerics", choices=("exact", "fp32", "int8"),
                        default="exact",
                        help="numerics-ladder tier of the decode hot path: "
                             "'exact' keeps fp64 bit identity with the "
                             "looped oracle (default); 'fp32' runs the fp32 "
                             "batched masked-softmax core over fp32 KV "
                             "planes; 'int8' stores int8 KV codes with "
                             "per-row fp32 scales (4x less KV DRAM) at a "
                             "declared accuracy budget — see "
                             "repro.nn.numerics and benchmarks/"
                             "bench_numerics.py (requires the packed "
                             "attention backend)")
    parser.add_argument("--admission", choices=("reserve", "optimistic"),
                        default="reserve",
                        help="'reserve' bills each request its worst-case "
                             "schedule-bound KV reservation for its whole "
                             "lifetime (default); 'optimistic' admits "
                             "against actual pool usage plus "
                             "--headroom-pages and preempts under pressure "
                             "(recompute-on-preempt: greedy replay is "
                             "bit-identical, so preemption costs latency, "
                             "never tokens)")
    parser.add_argument("--preempt-policy",
                        choices=("lowest_priority", "most_pages",
                                 "latest_arrival"),
                        default="lowest_priority",
                        help="victim selection under pool pressure "
                             "(optimistic admission only)")
    parser.add_argument("--headroom-pages", type=int, default=12,
                        help="pool pages kept unbilled at optimistic "
                             "admission — slack for resident sequences' "
                             "decode growth before preemption steps in.  "
                             "0 is fully optimistic and can thrash on "
                             "preemption recompute (see the ROADMAP "
                             "ceiling note); the default matches the "
                             "benchmarked sweet spot")
    parser.add_argument("--pool-kib", type=int, default=768,
                        help="total KV memory-pool budget in KiB (split "
                             "evenly across replicas in serve-cluster)")
    parser.add_argument("--page-tokens", type=int, default=16,
                        help="KV columns per pool page")
    parser.add_argument("--prompt-len", type=int, default=48,
                        help="prompt length in tokens")
    parser.add_argument("--max-new", type=int, nargs=2, default=(8, 24),
                        metavar=("LO", "HI"), help="decode-budget range")
    parser.add_argument("--token-keep", type=float, default=0.35,
                        help="final-layer token keep fraction (spatten mode)")
    parser.add_argument("--priorities", type=int, default=1,
                        help="number of scheduling priority classes")
    parser.add_argument("--layers", type=int, default=6,
                        help="transformer depth of the serving model")
    parser.add_argument("--seed", type=int, default=0,
                        help="trace/model seed")
    parser.add_argument("--stats-json", metavar="PATH", default=None,
                        help="also write the run's stats report as JSON "
                             "('-' streams it to stdout)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON of the run "
                             "(simulated-clock timestamps; open in "
                             "chrome://tracing / Perfetto or feed to "
                             "`repro trace-report`; '-' for stdout)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write per-step metrics samples as JSONL "
                             "('-' for stdout)")
    parser.add_argument("--prom-out", metavar="PATH", default=None,
                        help="write final metrics in Prometheus text "
                             "exposition format ('-' for stdout)")
    parser.add_argument("--profile", action="store_true",
                        help="profile the packed decode backend's hot "
                             "path (wall clock, printed after the report)")
    parser.add_argument("--audit-every", type=int, metavar="N", default=None,
                        help="run the KV pool invariant audit every N "
                             "engine steps (global ledger audit in "
                             "serve-cluster); counted in telemetry as "
                             "repro_pool_audits_total")
    parser.add_argument("--slo", action="append", metavar="SPEC", default=None,
                        help="declare an SLO objective as CLASS:METRIC:pPCT:"
                             "TARGET_MS (CLASS is a priority tier or 'all'; "
                             "METRIC is ttft/tpot/e2e), e.g. 0:ttft:p95:150 "
                             "or all:e2e:p99:2000; repeatable.  The stats "
                             "report gains an 'slo' section with attainment "
                             "and error-budget burn (simulated clock; core "
                             "stats stay bit-identical)")
    parser.add_argument("--slo-window-ms", type=float, default=100.0,
                        metavar="W",
                        help="tumbling window width (simulated ms) for SLO "
                             "error-budget burn-rate accounting")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="SpAtten (HPCA 2021) reproduction harness"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run experiments by name (or 'all')")
    run.add_argument("names", nargs="+", help="experiment names or 'all'")
    serve = sub.add_parser(
        "serve", help="run a synthetic arrival trace through repro.serving"
    )
    _add_serving_flags(serve)
    serve.add_argument("--mode", choices=("dense", "spatten", "both"),
                       default="both", help="attention path(s) to serve with")
    cluster = sub.add_parser(
        "serve-cluster",
        help="run a trace across N serving replicas (repro.cluster): "
             "pluggable routing over a sharded KV pool",
    )
    _add_serving_flags(cluster)
    # The mixed trace carries 3x-longer dense prompts and every shard
    # must hold a whole dense reservation, so the fleet default budget
    # is larger than single-engine serve's.
    cluster.set_defaults(pool_kib=4096)
    cluster.add_argument("--replicas", type=int, default=2,
                         help="number of serving-engine replicas")
    cluster.add_argument("--policy",
                         choices=("round_robin", "least_loaded",
                                  "pruning_aware"),
                         default="pruning_aware",
                         help="request-to-replica routing policy")
    cluster.add_argument("--traffic", choices=("mixed", "uniform"),
                         default="mixed",
                         help="'mixed' draws a skewed per-request schedule "
                              "mix (75%% short pruned / 25%% long dense); "
                              "'uniform' mirrors plain `repro serve` traffic "
                              "(every request inherits --mode)")
    cluster.add_argument("--mode", choices=("dense", "spatten"),
                         default="spatten",
                         help="engine-default schedule for uniform traffic")
    cluster.add_argument("--replica-budget-kib", type=int, default=0,
                         help="per-replica KV budget in KiB (overrides the "
                              "even split of --pool-kib)")
    cluster.add_argument("--drain-at", action="append", metavar="TIME:REPLICA",
                         help="gracefully drain a replica at a simulated "
                              "time; its in-flight requests requeue through "
                              "the router (repeatable)")
    cluster.add_argument("--fail-at", action="append", metavar="TIME:REPLICA",
                         help="like --drain-at but marks the replica failed "
                              "in the fleet report (repeatable)")
    cluster.add_argument("--recover-at", action="append",
                         metavar="TIME:REPLICA",
                         help="rejoin a previously drained/failed replica at "
                              "a simulated time: its empty shard re-registers "
                              "with the global ledger and the router places "
                              "new work on it again (repeatable)")
    cluster.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                         help="generate a deterministic fault plan from this "
                              "seed (crash/recover cycles, straggler windows, "
                              "KV-page corruption) and arm heartbeat failure "
                              "detection plus the graceful-degradation "
                              "ladder; identical seed + profile + fleet "
                              "shape replays identical faults")
    cluster.add_argument("--chaos-profile",
                         choices=("light", "moderate", "heavy"),
                         default="moderate",
                         help="fault-plan intensity for --chaos-seed")
    cluster.add_argument("--deadline-ms", type=float, default=0.0,
                         help="per-request deadline in simulated ms, "
                              "measured from arrival; a request not admitted "
                              "in time fails cleanly (0 disables)")
    cluster.add_argument("--retry-budget", type=int, default=2,
                         help="placement retries (exponential backoff) for a "
                              "request that momentarily fits no active "
                              "replica; exhaustion fails it cleanly")
    lint = sub.add_parser(
        "lint",
        help="run the repro.analysis determinism/accounting lint pass "
             "(exit 1 on unsuppressed findings)",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint (default: src/repro)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="console report format")
    lint.add_argument("--rules", metavar="ID,ID,...", default=None,
                      help="comma-separated rule ids to run "
                           "(default: every registered rule)")
    lint.add_argument("--out", metavar="PATH", default=None,
                      help="also write the JSON report to PATH "
                           "(CI archives it as a build artifact)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and exit")
    report = sub.add_parser(
        "trace-report",
        help="analyze a trace file written by --trace-out: per-phase time "
             "breakdown, pruning-savings timeline, preemption/requeue storms",
    )
    report.add_argument("path", help="Chrome trace-event JSON file")
    slo_report = sub.add_parser(
        "slo-report",
        help="evaluate SLO attainment and exact critical-path latency "
             "attribution over a trace file written by --trace-out",
    )
    slo_report.add_argument("path", help="Chrome trace-event JSON file")
    slo_report.add_argument("--slo", action="append", metavar="SPEC",
                            required=True,
                            help="SLO objective as CLASS:METRIC:pPCT:"
                                 "TARGET_MS (repeatable; see `serve --slo`)")
    slo_report.add_argument("--slo-window-ms", type=float, default=100.0,
                            metavar="W",
                            help="tumbling window width (simulated ms) for "
                                 "burn-rate accounting")
    slo_report.add_argument("--format", choices=("text", "json"),
                            default="text", help="console report format")
    slo_report.add_argument("--out", metavar="PATH", default=None,
                            help="also write the JSON report to PATH "
                                 "(CI archives it as a build artifact)")
    compare = sub.add_parser(
        "bench-compare",
        help="gate on benchmark history: judge each bench's latest "
             "record against the median of its earlier ones with "
             "noise-aware thresholds (exit 1 on regression)",
    )
    compare.add_argument("names", nargs="*", metavar="BENCH",
                         help="bench histories to compare (default: every "
                              "*.jsonl under the history directory; naming "
                              "a bench with no history file fails)")
    compare.add_argument("--history", metavar="DIR",
                         default="benchmarks/results/history",
                         help="history directory of per-bench JSONL files")
    compare.add_argument("--format", choices=("text", "json"),
                         default="text", help="console report format")
    compare.add_argument("--out", metavar="PATH", default=None,
                         help="also write the JSON report to PATH "
                              "(CI archives it as a build artifact)")
    args = parser.parse_args(argv)

    if args.command == "serve":
        return serve_command(args)
    if args.command == "serve-cluster":
        return serve_cluster_command(args)
    if args.command == "lint":
        return lint_command(args)
    if args.command == "trace-report":
        return trace_report_command(args)
    if args.command == "slo-report":
        return slo_report_command(args)
    if args.command == "bench-compare":
        return bench_compare_command(args)

    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        # repro: allow[det-wallclock] -- operator-facing progress timing
        # for `repro run`; printed to the console only, never lands in
        # a deterministic artifact.
        start = time.time()
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        EXPERIMENTS[name]()
        # repro: allow[det-wallclock] -- same console-only progress timing
        print(f"[{name} done in {time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
