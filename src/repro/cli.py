"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro.cli list                 # show available experiments
    python -m repro.cli run fig14 table4     # run specific experiments
    python -m repro.cli run all              # everything (a few minutes)
    python -m repro.cli serve --mode both    # continuous-batching serving

Each experiment prints the same rows the paper's table or figure
reports, with the paper's numbers quoted in the table notes.  The
``serve`` subcommand runs a synthetic Poisson arrival trace through the
continuous-batching engine (:mod:`repro.serving`) and prints its
:class:`~repro.serving.ServingStats` report.  Its defaults match the
flag defaults below: 16 requests arriving at 200 req/s (simulated),
served with chunked prefill (32-token chunks; pass ``--prefill-chunk
0`` for the stalling monolithic prefill).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from .eval import experiments as perf
from .eval import quality_experiments as quality
from .eval.charts import bar_chart, line_chart


def _fig19_with_chart():
    result = perf.fig19_design_space()
    print(result.table)
    print()
    print(line_chart(
        list(result.parallelism_gflops.keys()),
        list(result.parallelism_gflops.values()),
        title="top-k parallelism vs GFLOPS (saturates at 16)",
        x_label="parallelism", y_label="GFLOPS", log_x=True,
    ))
    return result


def _fig20_with_chart():
    result = perf.fig20_speedup_breakdown()
    print(result.table)
    print()
    print(bar_chart(
        dict(zip(result.stage_names, result.cumulative_speedup)),
        title="cumulative speedup over TITAN Xp (log scale)",
        log_scale=True, unit="x",
    ))
    return result


def _fig21_with_chart():
    result = quality.fig21_accuracy_tradeoff()
    print(result.table)
    print()
    print(line_chart(
        result.token_ratios, [l * 100 for l in result.token_losses],
        title="token pruning ratio vs accuracy delta (%)",
        x_label="ratio", y_label="%",
    ))
    return result


def _table_experiment(fn: Callable):
    def run():
        result = fn()
        print(result if not hasattr(result, "table") else result.table)
        if hasattr(result, "fig17_table"):
            print()
            print(result.fig17_table)
        return result

    return run


EXPERIMENTS: Dict[str, Callable] = {
    "headline": _table_experiment(perf.headline_reductions),
    "fig01": _table_experiment(quality.fig01_cascade_pruning),
    "fig02": _table_experiment(perf.fig02_latency_breakdown),
    "fig07": _table_experiment(quality.fig07_quant_error),
    "table1": _table_experiment(perf.table1_architecture),
    "table2": _table_experiment(perf.table2_power),
    "fig13": _table_experiment(perf.fig13_breakdowns),
    "fig14": _table_experiment(perf.fig14_speedup_energy),
    "table3": _table_experiment(perf.table3_prior_art),
    "table4": _table_experiment(perf.table4_e2e_breakdown),
    "fig15": _table_experiment(perf.fig15_e2e_speedup),
    "fig16": _table_experiment(perf.fig16_hat_codesign),
    "fig18": _table_experiment(perf.fig18_roofline),
    "fig19": _fig19_with_chart,
    "fig20": _fig20_with_chart,
    "fig21": _fig21_with_chart,
    "fig22": _table_experiment(quality.fig22_visualization),
    "fig23": _table_experiment(quality.fig23_importance_map),
    "topk": _table_experiment(perf.topk_engine_comparison),
    "ablation": _table_experiment(perf.ablation_pruning_components),
    "gpu-pruning": _table_experiment(perf.gpu_token_pruning),
}


def serve_command(args) -> int:
    """Serve a synthetic arrival trace with the continuous-batching engine."""
    from .serving import PoolExhausted

    try:
        return _serve(args)
    except (ValueError, PoolExhausted) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2


def _serve(args) -> int:
    from .config import GPT2_SMALL, PruningConfig
    from .serving import KVMemoryPool, ServingEngine
    from .workloads import (
        accuracy_scale_config,
        build_task_model,
        build_vocabulary,
        make_lm_corpus,
        synthetic_request_trace,
    )

    vocab = build_vocabulary(size=512, n_classes=4, seed=args.seed)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=args.layers, d_model=128, n_heads=8,
        max_seq_len=max(256, args.prompt_len + args.max_new[1] + 1),
    )
    model, _ = build_task_model(config, vocab, "lm", seed=args.seed)
    corpus = make_lm_corpus(vocab, n_tokens=4096, seed=args.seed + 1)
    requests = synthetic_request_trace(
        corpus,
        n_requests=args.requests,
        rate_per_s=args.rate,
        prompt_len=args.prompt_len,
        max_new_tokens=tuple(args.max_new),
        n_priorities=args.priorities,
        seed=args.seed,
    )
    pruning = PruningConfig(
        token_keep_final=args.token_keep, head_keep_final=0.75, value_keep=0.9
    )
    modes = (
        [("dense", None), ("spatten", pruning)]
        if args.mode == "both"
        else [(args.mode, pruning if args.mode == "spatten" else None)]
    )
    prefill_chunk = args.prefill_chunk if args.prefill_chunk != 0 else None
    throughputs = {}
    for mode, mode_pruning in modes:
        pool = KVMemoryPool(
            config, budget_bytes=args.pool_kib * 1024,
            page_tokens=args.page_tokens,
        )
        engine = ServingEngine(
            model, pool, pruning=mode_pruning, prefill_chunk=prefill_chunk,
            attention_backend=args.attention_backend,
        )
        stats = engine.run(requests)
        throughputs[mode] = stats.throughput_tps
        print()
        print(stats.table())
    if len(throughputs) == 2:
        ratio = throughputs["spatten"] / throughputs["dense"]
        print(f"\nspatten/dense throughput at the same pool budget: {ratio:.2f}x")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="SpAtten (HPCA 2021) reproduction harness"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run experiments by name (or 'all')")
    run.add_argument("names", nargs="+", help="experiment names or 'all'")
    serve = sub.add_parser(
        "serve", help="run a synthetic arrival trace through repro.serving"
    )
    serve.add_argument("--requests", type=int, default=16,
                       help="number of requests in the trace")
    serve.add_argument("--rate", type=float, default=200.0,
                       help="Poisson arrival rate (req per simulated second)")
    serve.add_argument("--prefill-chunk", type=int, default=32,
                       help="prompt tokens committed per mixed step; 0 runs "
                            "the whole prefill monolithically at admission "
                            "(stalls the live decode batch)")
    serve.add_argument("--mode", choices=("dense", "spatten", "both"),
                       default="both", help="attention path(s) to serve with")
    serve.add_argument("--attention-backend", choices=("packed", "looped"),
                       default="packed",
                       help="decode attention backend: 'packed' batches "
                            "projections and the dense attention core "
                            "across the live batch (default); 'looped' "
                            "keeps the per-sequence oracle (bit-identical "
                            "tokens, slower wall clock)")
    serve.add_argument("--pool-kib", type=int, default=768,
                       help="KV memory-pool budget in KiB")
    serve.add_argument("--page-tokens", type=int, default=16,
                       help="KV columns per pool page")
    serve.add_argument("--prompt-len", type=int, default=48,
                       help="prompt length in tokens")
    serve.add_argument("--max-new", type=int, nargs=2, default=(8, 24),
                       metavar=("LO", "HI"), help="decode-budget range")
    serve.add_argument("--token-keep", type=float, default=0.35,
                       help="final-layer token keep fraction (spatten mode)")
    serve.add_argument("--priorities", type=int, default=1,
                       help="number of scheduling priority classes")
    serve.add_argument("--layers", type=int, default=6,
                       help="transformer depth of the serving model")
    serve.add_argument("--seed", type=int, default=0, help="trace/model seed")
    args = parser.parse_args(argv)

    if args.command == "serve":
        return serve_command(args)

    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        start = time.time()
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        EXPERIMENTS[name]()
        print(f"[{name} done in {time.time() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
