"""HBM2 memory-system model (the reproduction's Ramulator substitute).

16 pseudo-independent channels, address-interleaved; the Q-K-V fetcher's
crossbar issues at most one request per channel per cycle (Section IV-D:
"There is no memory access conflict because the crossbar generates at
most one memory request for each channel at a time"), so a transfer of
``n`` bytes spread across channels completes in
``ceil(bytes_per_channel / channel_bytes_per_cycle)`` cycles at full
streaming efficiency.  Gather patterns (pruned-token K/V fetches) pay a
row-locality penalty modelled as a fixed efficiency factor plus per-burst
row activations in the energy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["HBMConfig", "HBMModel", "HBMTransfer"]


@dataclass(frozen=True)
class HBMConfig:
    """Channel geometry and energy constants.

    Energy constants follow the fine-grained-DRAM accounting the paper
    cites (O'Connor et al., MICRO'17): a per-bit transfer cost plus a
    per-activation cost amortised over the bytes of each row burst.
    """

    n_channels: int = 16
    channel_bandwidth: float = 32.0e9  # bytes/s
    clock_hz: float = 1.0e9  # accelerator clock used for cycle conversion
    interleave_bytes: int = 256
    row_bytes: int = 1024
    energy_per_bit_pj: float = 3.9
    activation_energy_pj: float = 909.0
    random_efficiency: float = 0.70
    sequential_efficiency: float = 0.95
    #: Background power per channel (refresh, I/O idle, clocking),
    #: charged for the whole run duration; dominant at the modest
    #: average bandwidths of the benchmark mix, which is how the paper's
    #: Table II reaches 5.71 W of DRAM power (16 x 0.2875 = 4.6 W static
    #: plus dynamic transfer energy).
    static_power_w_per_channel: float = 0.2875

    @property
    def static_power_w(self) -> float:
        return self.static_power_w_per_channel * self.n_channels

    @property
    def bytes_per_cycle_per_channel(self) -> float:
        return self.channel_bandwidth / self.clock_hz

    @property
    def peak_bandwidth(self) -> float:
        return self.n_channels * self.channel_bandwidth


@dataclass
class HBMTransfer:
    """Result of one modelled DRAM transfer."""

    n_bytes: float
    cycles: float
    energy_pj: float
    n_activations: float
    per_channel_bytes: np.ndarray = field(repr=False, default=None)

    @property
    def bandwidth_utilisation(self) -> float:
        """Achieved fraction of peak bandwidth during this transfer."""
        if self.cycles <= 0:
            return 0.0
        return self.n_bytes / self.cycles  # bytes per cycle (caller scales)


class HBMModel:
    """Stateful traffic accountant for one HBM stack."""

    def __init__(self, config: HBMConfig = HBMConfig()):
        self.config = config
        self.total_bytes = 0.0
        self.total_cycles = 0.0
        self.total_energy_pj = 0.0
        self.total_activations = 0.0

    def reset(self) -> None:
        self.total_bytes = 0.0
        self.total_cycles = 0.0
        self.total_energy_pj = 0.0
        self.total_activations = 0.0

    def transfer(self, n_bytes: float, random_access: bool = False) -> HBMTransfer:
        """Model one transfer of ``n_bytes`` spread over the channels.

        Args:
            n_bytes: payload size.
            random_access: gather pattern (pruned K/V fetch) vs stream.
        """
        cfg = self.config
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_bytes == 0:
            return HBMTransfer(0.0, 0.0, 0.0, 0.0, np.zeros(cfg.n_channels))

        # Address interleaving spreads bursts round-robin; the residue
        # makes the busiest channel carry at most one extra burst.
        n_bursts = int(np.ceil(n_bytes / cfg.interleave_bytes))
        per_channel_bursts = np.full(cfg.n_channels, n_bursts // cfg.n_channels)
        per_channel_bursts[: n_bursts % cfg.n_channels] += 1
        per_channel_bytes = per_channel_bursts * float(cfg.interleave_bytes)

        efficiency = (
            cfg.random_efficiency if random_access else cfg.sequential_efficiency
        )
        busiest = float(per_channel_bytes.max())
        cycles = busiest / (cfg.bytes_per_cycle_per_channel * efficiency)

        if random_access:
            # Every burst risks opening a new row.
            activations = float(n_bursts)
        else:
            activations = float(np.ceil(n_bytes / cfg.row_bytes))
        energy = n_bytes * 8.0 * cfg.energy_per_bit_pj
        energy += activations * cfg.activation_energy_pj

        self.total_bytes += float(n_bytes)
        self.total_cycles += cycles
        self.total_energy_pj += energy
        self.total_activations += activations
        return HBMTransfer(
            float(n_bytes), cycles, energy, activations, per_channel_bytes
        )
