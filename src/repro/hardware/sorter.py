"""Batcher odd-even merge sorter — the full-sort baseline of Section IV-B.

The paper compares its quick-select top-k engine against "a regular full
sorting unit (a Batcher's Odd-Even Sorter to perform merge-sort)" and
reports 1.4x higher throughput at 3.5x lower power for length-1024
inputs.  This module provides:

* :func:`batcher_network` — the comparator schedule of the odd-even
  merge network (functional; tests sort with it);
* :class:`BatcherSorter` — a time-multiplexed implementation with a
  fixed comparator budget, the realistic ASIC design point the engine is
  compared against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["batcher_network", "BatcherSorter", "SortResult"]


def batcher_network(n: int) -> List[List[Tuple[int, int]]]:
    """Comparator stages of Batcher's odd-even merge sort for size ``n``.

    ``n`` must be a power of two.  Returns a list of stages; each stage
    is a list of ``(i, j)`` compare-exchange pairs (``i < j``) that can
    run concurrently.
    """
    if n < 1 or (n & (n - 1)) != 0:
        raise ValueError("network size must be a power of two")
    stages: List[List[Tuple[int, int]]] = []
    p = 1
    while p < n:
        k = p
        while k >= 1:
            stage: List[Tuple[int, int]] = []
            for j in range(k % p, n - k, 2 * k):
                for i in range(min(k, n - j - k)):
                    if (i + j) // (2 * p) == (i + j + k) // (2 * p):
                        stage.append((i + j, i + j + k))
            if stage:
                stages.append(stage)
            k //= 2
        p *= 2
    return stages


def sort_with_network(values: np.ndarray) -> np.ndarray:
    """Sort ascending by applying the comparator schedule (test oracle)."""
    values = np.array(values, dtype=np.float64)
    n = 1 << max(0, math.ceil(math.log2(max(len(values), 1))))
    padded = np.full(n, np.inf)
    padded[: len(values)] = values
    for stage in batcher_network(n):
        for i, j in stage:
            if padded[i] > padded[j]:
                padded[i], padded[j] = padded[j], padded[i]
    return padded[: len(values)]


@dataclass
class SortResult:
    sorted_values: np.ndarray
    cycles: float
    comparator_ops: int
    energy_pj: float


class BatcherSorter:
    """Time-multiplexed odd-even merge sorter with a comparator budget.

    A full combinational network for n=1024 needs ~28k compare-exchange
    units — far too much area; a realistic unit time-multiplexes a bank
    of ``n_comparators`` over the schedule.  Cycles are
    ``ceil(stage_size / n_comparators)`` summed over stages.  The
    default budget of 64 comparators (4x the top-k engine's 2x16
    arrays, reflecting the paper's larger-sorter design point) lands the
    published comparison: the quick-select engine delivers ~1.4x the
    throughput at a fraction of the comparator energy.
    """

    def __init__(self, n_comparators: int = 64, energy_per_compare_pj: float = 0.14):
        if n_comparators <= 0:
            raise ValueError("n_comparators must be positive")
        self.n_comparators = n_comparators
        self.energy_per_compare_pj = energy_per_compare_pj

    def sort(self, values: np.ndarray) -> SortResult:
        values = np.asarray(values, dtype=np.float64)
        n = 1 << max(0, math.ceil(math.log2(max(len(values), 1))))
        stages = batcher_network(n)
        cycles = sum(
            math.ceil(len(stage) / self.n_comparators) for stage in stages
        )
        comparator_ops = sum(len(stage) for stage in stages)
        return SortResult(
            sorted_values=sort_with_network(values),
            cycles=float(cycles),
            comparator_ops=comparator_ops,
            energy_pj=comparator_ops * self.energy_per_compare_pj,
        )

    def topk_indices(self, values: np.ndarray, k: int) -> Tuple[np.ndarray, SortResult]:
        """Top-k via full sort (what the baseline unit must do)."""
        result = self.sort(values)
        if k >= len(values):
            return np.arange(len(values), dtype=np.int64), result
        threshold = result.sorted_values[len(values) - k]
        order = np.lexsort((np.arange(len(values)), -np.asarray(values)))
        kept = np.sort(order[:k]).astype(np.int64)
        del threshold
        return kept, result
