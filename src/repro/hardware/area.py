"""Area model (paper Fig. 13a: 18.71 mm^2 at TSMC 40 nm).

The published module breakdown is encoded directly; a parametric model
scales each module by its resource driver so design-space exploration
(different multiplier counts, top-k parallelism, SRAM sizes) produces
sensible estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .arch_config import ArchConfig, SPATTEN_FULL

__all__ = ["AreaBreakdown", "PAPER_AREA_MM2", "area_model"]

#: Fig. 13(a): on-chip area per module, mm^2 (sums to 18.71).
PAPER_AREA_MM2: Dict[str, float] = {
    "qk_module": 7.12,        # 38.1% — includes the Key SRAM
    "probv_module": 7.22,     # 38.6% — includes the Value SRAM
    "softmax": 2.65,          # 14.2% — float exp/accumulate/divide pipeline
    "topk_engines": 0.50,     # 2.7%
    "qkv_fetcher": 0.79,      # 4.2% — crossbars + FIFOs + converter
    "others": 0.43,           # 2%
}


@dataclass
class AreaBreakdown:
    """Per-module area in mm^2."""

    modules: Dict[str, float]

    @property
    def total_mm2(self) -> float:
        return float(sum(self.modules.values()))

    def fraction(self, module: str) -> float:
        return self.modules[module] / self.total_mm2


def area_model(arch: ArchConfig = SPATTEN_FULL) -> AreaBreakdown:
    """Parametric area estimate for an arbitrary configuration.

    Scaling drivers: Q x K and prob x V scale with their multiplier
    counts and SRAM sizes; softmax with its parallelism; top-k with its
    comparator parallelism; the fetcher with channel count.  The
    reference point reproduces the paper's 18.71 mm^2 exactly.
    """
    ref = SPATTEN_FULL
    # Split datapath-module area between multipliers (60%) and SRAM (40%),
    # consistent with a 512-multiplier array next to a 196 KB macro.
    qk = PAPER_AREA_MM2["qk_module"] * (
        0.6 * arch.qk_multipliers / ref.qk_multipliers
        + 0.4 * arch.key_sram_bytes / ref.key_sram_bytes
    )
    pv = PAPER_AREA_MM2["probv_module"] * (
        0.6 * arch.probv_multipliers / ref.probv_multipliers
        + 0.4 * arch.value_sram_bytes / ref.value_sram_bytes
    )
    softmax = PAPER_AREA_MM2["softmax"] * (
        arch.softmax_parallelism / ref.softmax_parallelism
    )
    topk = PAPER_AREA_MM2["topk_engines"] * (
        arch.topk_parallelism / ref.topk_parallelism
    )
    fetcher = PAPER_AREA_MM2["qkv_fetcher"] * (
        arch.hbm_channels / ref.hbm_channels
    )
    others = PAPER_AREA_MM2["others"]
    return AreaBreakdown(
        modules={
            "qk_module": qk,
            "probv_module": pv,
            "softmax": softmax,
            "topk_engines": topk,
            "qkv_fetcher": fetcher,
            "others": others,
        }
    )
