"""On-chip bitwidth converter (paper Section IV-D).

DRAM stores attention inputs at 4, 6, 8, 10 or 12 bits (MSB chunk) plus
optional 4-bit LSB chunks; the on-chip datapath is fixed at 12 bits.
The converter selects the right bits out of each fetched word (MUXes),
shifts for unaligned reads, and — when an LSB fetch arrives — recomposes
``(msb << lsb_bits) | lsb`` into the full code.

The functional part operates on integer code arrays so tests can verify
exact recomposition; the cost part counts conversions for energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BitwidthConverter", "ConverterStats"]


@dataclass
class ConverterStats:
    elements_converted: int = 0
    energy_pj: float = 0.0


class BitwidthConverter:
    """Convert packed DRAM codes into the fixed on-chip width."""

    def __init__(self, onchip_bits: int = 12, energy_per_element_pj: float = 0.05):
        if onchip_bits < 4:
            raise ValueError("onchip_bits must be >= 4")
        self.onchip_bits = onchip_bits
        self.energy_per_element_pj = energy_per_element_pj
        self.stats = ConverterStats()

    def _account(self, n: int) -> None:
        self.stats.elements_converted += n
        self.stats.energy_pj += n * self.energy_per_element_pj

    def account_elements(self, n: int) -> None:
        """Cost-only accounting for elements converted in bulk (the
        simulator knows counts but does not materialise the codes)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        self._account(int(n))

    def align_msb(self, msb_codes: np.ndarray, msb_bits: int) -> np.ndarray:
        """Left-align MSB-only codes into the on-chip width.

        An ``msb_bits``-wide code occupies the top bits of the 12-bit
        datapath word; low bits are zero until (if ever) LSBs arrive.
        The numerical weight of the code is preserved: shifting left by
        ``onchip - msb`` multiplies by the step ratio.
        """
        msb_codes = np.asarray(msb_codes, dtype=np.int64)
        if msb_bits > self.onchip_bits:
            raise ValueError("msb wider than on-chip datapath")
        self._account(msb_codes.size)
        return msb_codes << (self.onchip_bits - msb_bits)

    def recompose(
        self,
        msb_codes: np.ndarray,
        lsb_codes: np.ndarray,
        msb_bits: int,
        lsb_bits: int,
    ) -> np.ndarray:
        """Combine MSB and LSB chunks into full codes, on-chip aligned."""
        if msb_bits + lsb_bits > self.onchip_bits:
            raise ValueError("msb+lsb exceed on-chip width")
        msb_codes = np.asarray(msb_codes, dtype=np.int64)
        lsb_codes = np.asarray(lsb_codes, dtype=np.int64)
        if msb_codes.shape != lsb_codes.shape:
            raise ValueError("chunk shapes must match")
        full = (msb_codes << lsb_bits) + lsb_codes
        self._account(msb_codes.size)
        return full << (self.onchip_bits - msb_bits - lsb_bits)

    def reset(self) -> None:
        self.stats = ConverterStats()
