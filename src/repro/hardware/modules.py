"""Datapath-module cycle/energy models (paper Sections IV-E..IV-G).

Each module exposes per-query cycle costs (the pipeline scheduler in
:mod:`repro.hardware.accelerator` takes the max across concurrent
stages) and accumulates activity for the energy model.

* :class:`QKModule` — 512 multipliers + reconfigurable adder tree.  A
  key row of dimension D consumes D multipliers, so ``multipliers / D``
  keys are processed per cycle (Fig. 11's broadcast-multiply-reduce).
* :class:`SoftmaxUnit` — dequantize, exp (Taylor FMA pipeline),
  accumulate, divide, requantize at ``parallelism`` elements/cycle.
* :class:`ProbVModule` — the mirrored broadcast-multiply-reduce pipeline
  for attention_prob x V over the *locally kept* value vectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .energy import EnergyModel

__all__ = ["ModuleStats", "QKModule", "SoftmaxUnit", "ProbVModule"]


@dataclass
class ModuleStats:
    operations: float = 0.0  # MACs or elements, module-dependent
    cycles: float = 0.0
    energy_pj: float = 0.0


class QKModule:
    """Query-key multiplication unit."""

    def __init__(self, n_multipliers: int, energy: EnergyModel):
        if n_multipliers <= 0:
            raise ValueError("n_multipliers must be positive")
        self.n_multipliers = n_multipliers
        self.energy_model = energy
        self.stats = ModuleStats()

    def keys_per_cycle(self, head_dim: int) -> float:
        """Key rows consumed per cycle (Fig. 11's 512/D packing)."""
        if head_dim > self.n_multipliers:
            return self.n_multipliers / head_dim  # multi-cycle per key
        return self.n_multipliers // head_dim

    def query_cycles(self, n_keys: int, head_dim: int) -> float:
        """Cycles to compute one query's scores against ``n_keys`` keys."""
        if n_keys == 0:
            return 0.0
        return math.ceil(n_keys / self.keys_per_cycle(head_dim))

    def account(self, n_queries: int, n_keys: int, head_dim: int) -> None:
        macs = float(n_queries) * n_keys * head_dim
        self.stats.operations += macs
        self.stats.cycles += n_queries * self.query_cycles(n_keys, head_dim)
        self.stats.energy_pj += macs * self.energy_model.mac_pj


class SoftmaxUnit:
    """Softmax + progressive-quantization decision pipeline (Fig. 12)."""

    def __init__(self, parallelism: int, energy: EnergyModel):
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        self.parallelism = parallelism
        self.energy_model = energy
        self.stats = ModuleStats()

    def query_cycles(self, n_keys: int) -> float:
        if n_keys == 0:
            return 0.0
        return math.ceil(n_keys / self.parallelism)

    def account(self, n_rows: int, n_keys: int) -> None:
        elements = float(n_rows) * n_keys
        self.stats.operations += elements
        self.stats.cycles += n_rows * self.query_cycles(n_keys)
        self.stats.energy_pj += elements * self.energy_model.softmax_element_pj


class ProbVModule:
    """Attention_prob x V unit over locally-kept values."""

    def __init__(self, n_multipliers: int, energy: EnergyModel):
        if n_multipliers <= 0:
            raise ValueError("n_multipliers must be positive")
        self.n_multipliers = n_multipliers
        self.energy_model = energy
        self.stats = ModuleStats()

    def values_per_cycle(self, head_dim: int) -> float:
        if head_dim > self.n_multipliers:
            return self.n_multipliers / head_dim
        return self.n_multipliers // head_dim

    def query_cycles(self, n_values: int, head_dim: int) -> float:
        if n_values == 0:
            return 0.0
        return math.ceil(n_values / self.values_per_cycle(head_dim))

    def account(self, n_queries: int, n_values: int, head_dim: int) -> None:
        macs = float(n_queries) * n_values * head_dim
        self.stats.operations += macs
        self.stats.cycles += n_queries * self.query_cycles(n_values, head_dim)
        self.stats.energy_pj += macs * self.energy_model.mac_pj
