"""Energy and power constants for the 40 nm SpAtten implementation.

The paper derives per-operation energies from Cadence Genus synthesis
(logic), CACTI (SRAMs/FIFOs), 45 nm FPU datasheets (softmax float
pipeline, used as an upper bound for 40 nm), and fine-grained HBM
measurements (DRAM).  We encode the resulting constants; per-benchmark
dynamic energy is then activity x constant, and the Table II /
Fig. 13 breakdowns are asserted against the paper's published splits
(1.36 W logic, 1.24 W SRAM, 5.71 W DRAM, 8.30 W total).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyModel", "EnergyBreakdown", "DEFAULT_ENERGY"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy constants (picojoules)."""

    #: 12-bit multiply + adder-tree share + pipeline registers, per MAC.
    mac_pj: float = 2.3
    #: Softmax per element: dequant scale, 5th-order Taylor exponential
    #: on an FMA, accumulation, division share, requantize.
    softmax_element_pj: float = 36.0
    #: Comparator toggle in the top-k engine / zero eliminator.
    compare_pj: float = 0.26
    #: SRAM access energy (196 KB-class macro at 40 nm).
    sram_read_pj_per_bit: float = 0.22
    sram_write_pj_per_bit: float = 0.26
    #: FIFO push+pop per bit.
    fifo_pj_per_bit: float = 0.22
    #: Crossbar routing per request.
    crossbar_request_pj: float = 2.4
    #: Bitwidth converter per element.
    converter_element_pj: float = 0.11
    #: Importance-score accumulator per probability accumulated.
    accumulate_pj: float = 0.33


@dataclass
class EnergyBreakdown:
    """Joules per subsystem for one simulated workload."""

    compute_logic_j: float = 0.0
    sram_j: float = 0.0
    dram_j: float = 0.0

    @property
    def onchip_j(self) -> float:
        return self.compute_logic_j + self.sram_j

    @property
    def total_j(self) -> float:
        return self.compute_logic_j + self.sram_j + self.dram_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute_logic_j=self.compute_logic_j + other.compute_logic_j,
            sram_j=self.sram_j + other.sram_j,
            dram_j=self.dram_j + other.dram_j,
        )

    def power_w(self, latency_s: float) -> "EnergyBreakdown":
        """Average power per subsystem over a run."""
        if latency_s <= 0:
            raise ValueError("latency must be positive")
        return EnergyBreakdown(
            compute_logic_j=self.compute_logic_j / latency_s,
            sram_j=self.sram_j / latency_s,
            dram_j=self.dram_j / latency_s,
        )


DEFAULT_ENERGY = EnergyModel()
