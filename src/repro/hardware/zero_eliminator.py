"""Zero eliminator (paper Section IV-C, Fig. 10).

Compacts the non-zero survivors of a comparator array while preserving
order.  The hardware computes, per element, the number of zeros before
it (prefix sum), then routes elements through ``log2(n)`` shifter
stages: at stage ``r`` an element shifts left by ``2^r`` positions iff
bit ``r`` of its zero count is set.

:func:`shift_network_eliminate` simulates that exact datapath stage by
stage (tests check it against plain boolean compaction);
:class:`ZeroEliminator` wraps it with cycle/energy accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["shift_network_eliminate", "ZeroEliminator", "ZeroEliminatorStats"]


def shift_network_eliminate(values: np.ndarray) -> np.ndarray:
    """Order-preserving compaction via the log-stage shift network.

    Returns the non-zero elements, in order, produced by the exact
    shifting schedule of Fig. 10.  Zeros are the "eliminated" fillers the
    comparator arrays leave behind.
    """
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    if n == 0:
        return values.copy()

    nonzero = values != 0.0
    # zeros strictly before each element
    zero_cnt = np.concatenate([[0], np.cumsum(~nonzero)[:-1]]).astype(np.int64)

    n_stages = max(1, math.ceil(math.log2(n))) if n > 1 else 1
    # Working array of (value, zero_cnt) with explicit holes.
    slots_value = values.copy()
    slots_count = zero_cnt.copy()
    slots_live = nonzero.copy()
    for stage in range(n_stages):
        shift = 1 << stage
        new_value = np.zeros_like(slots_value)
        new_count = np.zeros_like(slots_count)
        new_live = np.zeros_like(slots_live)
        for idx in range(n):
            if not slots_live[idx]:
                continue
            if slots_count[idx] & shift:
                dest = idx - shift
            else:
                dest = idx
            if dest < 0 or new_live[dest]:
                raise AssertionError("shift-network collision (routing bug)")
            new_value[dest] = slots_value[idx]
            new_count[dest] = slots_count[idx]
            new_live[dest] = True
        slots_value, slots_count, slots_live = new_value, new_count, new_live

    n_kept = int(nonzero.sum())
    if not np.all(slots_live[:n_kept]):
        raise AssertionError("shift network did not compact to a prefix")
    return slots_value[:n_kept]


@dataclass
class ZeroEliminatorStats:
    elements: int = 0
    invocations: int = 0
    energy_pj: float = 0.0


class ZeroEliminator:
    """Cycle/energy wrapper around the shift network.

    Throughput is ``parallelism`` elements per cycle (the network is
    fully pipelined); latency is ``log2(n)`` stages, charged once per
    invocation.
    """

    def __init__(self, parallelism: int = 16, energy_per_element_pj: float = 0.08):
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        self.parallelism = parallelism
        self.energy_per_element_pj = energy_per_element_pj
        self.stats = ZeroEliminatorStats()

    def latency_cycles(self, n: int) -> int:
        return max(1, math.ceil(math.log2(max(n, 2))))

    def eliminate(self, values: np.ndarray) -> Tuple[np.ndarray, float]:
        """Compact ``values``; returns (non-zeros, cycles)."""
        values = np.asarray(values)
        compacted = shift_network_eliminate(values)
        cycles = math.ceil(len(values) / self.parallelism) + self.latency_cycles(
            len(values)
        )
        self.stats.elements += len(values)
        self.stats.invocations += 1
        self.stats.energy_pj += len(values) * self.energy_per_element_pj
        return compacted, float(cycles)

    def reset(self) -> None:
        self.stats = ZeroEliminatorStats()
