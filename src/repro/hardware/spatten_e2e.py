"""SpAtten-e2e: the FFN-extended accelerator (paper Section V-B).

"We extend our SpAtten to support the FC in the Feed-Forward Network
(FFN) layers by reusing the multiplier arrays.  FC weights are linear
symmetrically quantized to 12 bits and 8 bits and stored on DRAM."

In the GPT-2 generation stage every FC is a matrix-vector product, so
each decode step must stream the full weight set of every layer from
DRAM — the e2e design is therefore weight-bandwidth-bound, which is
exactly the behaviour Table IV reports (FC 92.4% of SpAtten-e2e
latency) and the reason the HAT co-design of Fig. 16 shrinks FFN
dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import ModelConfig
from ..core.trace import AttentionTrace
from .accelerator import SimReport, SpAttenSimulator
from .arch_config import ArchConfig, SPATTEN_FULL
from .energy import DEFAULT_ENERGY, EnergyBreakdown, EnergyModel
from .hbm import HBMConfig

__all__ = ["E2EReport", "SpAttenE2ESimulator", "fc_weight_bytes_per_block"]


def fc_weight_bytes_per_block(model: ModelConfig, fc_bits: int) -> float:
    """Weight bytes of one block's FC stack (QKV, output FC, FFN)."""
    d, f = model.d_model, model.d_ff
    n_weights = 4.0 * d * d + 2.0 * d * f
    return n_weights * fc_bits / 8.0


@dataclass
class E2EReport:
    """End-to-end (attention + FC) simulation outcome."""

    attention: SimReport
    fc_cycles: float
    fc_dram_bytes: float
    fc_energy: EnergyBreakdown
    fc_bits: int
    clock_hz: float

    @property
    def total_cycles(self) -> float:
        return self.attention.total_cycles + self.fc_cycles

    @property
    def latency_s(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def attention_latency_s(self) -> float:
        return self.attention.total_cycles / self.clock_hz

    @property
    def fc_latency_s(self) -> float:
        return self.fc_cycles / self.clock_hz

    @property
    def fc_latency_fraction(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.fc_cycles / self.total_cycles

    @property
    def energy(self) -> EnergyBreakdown:
        return self.attention.energy + self.fc_energy

    @property
    def average_power_w(self) -> float:
        if self.latency_s <= 0:
            return 0.0
        return self.energy.total_j / self.latency_s


class SpAttenE2ESimulator:
    """SpAtten with FC support via the reused multiplier arrays."""

    def __init__(
        self,
        arch: ArchConfig = SPATTEN_FULL,
        energy: EnergyModel = DEFAULT_ENERGY,
        hbm: Optional[HBMConfig] = None,
        fc_bits: int = 8,
    ):
        if fc_bits not in (8, 12):
            raise ValueError("the paper evaluates 8-bit and 12-bit FC weights")
        self.arch = arch
        self.energy_model = energy
        self.fc_bits = fc_bits
        self.attention_sim = SpAttenSimulator(arch, energy, hbm)

    def _fc_step_cost(
        self, model: ModelConfig, n_rows: int, weights_streamed: bool
    ):
        """Cycles/bytes/energy of one block's FC work on ``n_rows`` rows.

        ``weights_streamed``: in the generation stage (and for each new
        summarization pass) weights stream from DRAM; compute overlaps
        the stream, so cycles are the max of the two.
        """
        arch = self.arch
        d, f = model.d_model, model.d_ff
        macs = float(n_rows) * (4.0 * d * d + 2.0 * d * f)
        compute_cycles = macs / arch.total_multipliers
        weight_bytes = fc_weight_bytes_per_block(model, self.fc_bits)
        if weights_streamed:
            transfer = self.attention_sim.hbm.transfer(
                weight_bytes, random_access=False
            )
            dram_cycles = transfer.cycles
            dram_bytes = weight_bytes
            dram_energy_pj = transfer.energy_pj
        else:
            dram_cycles, dram_bytes, dram_energy_pj = 0.0, 0.0, 0.0
        cycles = max(compute_cycles, dram_cycles)
        compute_energy_pj = macs * self.energy_model.mac_pj
        return cycles, dram_bytes, compute_energy_pj, dram_energy_pj

    def run_trace(self, trace: AttentionTrace) -> E2EReport:
        """Attention (SpAtten pipeline) + FC (reused multipliers)."""
        attention = self.attention_sim.run_trace(trace)

        fc_cycles = 0.0
        fc_dram_bytes = 0.0
        fc_compute_pj = 0.0
        fc_dram_pj = 0.0
        for step in trace.steps:
            # Summarization processes the whole live sentence per layer,
            # streaming each layer's weights once; each decode step
            # re-streams them for its single row (matrix-vector).
            cycles, dbytes, c_pj, d_pj = self._fc_step_cost(
                trace.model, step.n_queries, weights_streamed=True
            )
            fc_cycles += cycles
            fc_dram_bytes += dbytes
            fc_compute_pj += c_pj
            fc_dram_pj += d_pj

        fc_energy = EnergyBreakdown(
            compute_logic_j=fc_compute_pj * 1e-12,
            sram_j=0.0,
            dram_j=fc_dram_pj * 1e-12,
        )
        return E2EReport(
            attention=attention,
            fc_cycles=fc_cycles,
            fc_dram_bytes=fc_dram_bytes,
            fc_energy=fc_energy,
            fc_bits=self.fc_bits,
            clock_hz=self.arch.clock_hz,
        )
