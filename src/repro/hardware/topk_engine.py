"""High-parallelism top-k engine (paper Section IV-B, Fig. 9).

The engine finds the k most important tokens/heads with average O(n)
work: a quick-select loop (pivot, comparator arrays, FIFO_L/FIFO_R, zero
eliminators) locates the k-th largest score, then an order-preserving
filter pass emits the survivors.

The simulation is faithful at the round level: every STATE_RUN drains
one FIFO through two ``parallelism``-wide comparator arrays
(``ceil(size / P)`` cycles), zero eliminators compact the survivors
(pipelined, adding their stage latency once), and the START logic picks
the next FIFO exactly as Algorithm 3 does.  The result is bit-identical
to :func:`repro.core.topk.topk_indices`, which unit tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.topk import filter_topk, quick_select_kth
from .zero_eliminator import ZeroEliminator

__all__ = ["TopKEngine", "TopKResult", "TopKEngineStats"]


@dataclass
class TopKResult:
    """One selection's outcome and cost."""

    indices: np.ndarray
    kth_value: float
    cycles: float
    n_rounds: int
    comparator_ops: int


@dataclass
class TopKEngineStats:
    selections: int = 0
    total_cycles: float = 0.0
    comparator_ops: int = 0
    energy_pj: float = 0.0
    max_fifo_occupancy: int = 0
    round_sizes: List[int] = field(default_factory=list)


class TopKEngine:
    """Cycle/energy model of the quick-select top-k engine.

    Args:
        parallelism: comparators per array (the paper uses 16, chosen in
            Fig. 19 so the engine is never the pipeline bottleneck).
        fifo_depth: capacity of FIFO_L/FIFO_R.  The architectural default
            holds a full 1024-token context; occupancy is tracked so
            design-space exploration can study smaller FIFOs.
        pivot_cycles: constant cost of the START stage per round.
        energy_per_compare_pj: comparator toggle energy.
    """

    def __init__(
        self,
        parallelism: int = 16,
        fifo_depth: int = 1024,
        pivot_cycles: int = 2,
        energy_per_compare_pj: float = 0.12,
        seed: int = 0,
    ):
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        self.parallelism = parallelism
        self.fifo_depth = fifo_depth
        self.pivot_cycles = pivot_cycles
        self.energy_per_compare_pj = energy_per_compare_pj
        self._rng = np.random.default_rng(seed)
        self.eliminator = ZeroEliminator(parallelism=parallelism)
        self.stats = TopKEngineStats()

    def select(self, scores: np.ndarray, k: int) -> TopKResult:
        """Top-k indices of ``scores`` (order-preserving) plus cost."""
        scores = np.asarray(scores, dtype=np.float64)
        n = len(scores)
        if n == 0 or k <= 0:
            return TopKResult(np.zeros(0, dtype=np.int64), float("nan"), 0.0, 0, 0)
        k = min(k, n)

        if k == n:
            # Pass-through: a single streaming pass, no quick-select.
            cycles = math.ceil(n / self.parallelism)
            self._account(cycles, 0, n)
            return TopKResult(np.arange(n, dtype=np.int64), float(scores.min()),
                              float(cycles), 0, 0)

        kth_value, num_eq_keep, qs_stats = quick_select_kth(scores, k, self._rng)

        cycles = 0.0
        comparator_ops = 0
        for round_size in qs_stats.partition_sizes:
            if round_size > self.fifo_depth:
                # Oversized partitions are processed in FIFO-sized chunks
                # (extra drain passes), costing proportionally more.
                chunks = math.ceil(round_size / self.fifo_depth)
            else:
                chunks = 1
            cycles += self.pivot_cycles * chunks
            cycles += math.ceil(round_size / self.parallelism)
            # Two zero eliminators (FIFO_L and FIFO_R sides) are pipelined
            # with the comparators; their stage latency appears once.
            cycles += self.eliminator.latency_cycles(round_size)
            comparator_ops += round_size
            self.stats.round_sizes.append(round_size)
            self.stats.max_fifo_occupancy = max(
                self.stats.max_fifo_occupancy, min(round_size, self.fifo_depth)
            )

        # Final filtering pass over the buffered inputs + zero eliminate.
        indices = filter_topk(scores, kth_value, num_eq_keep)
        cycles += math.ceil(n / self.parallelism)
        cycles += self.eliminator.latency_cycles(n)
        comparator_ops += n

        self._account(cycles, comparator_ops, n)
        return TopKResult(
            indices, kth_value, float(cycles), qs_stats.n_rounds, comparator_ops
        )

    def _account(self, cycles: float, comparator_ops: int, n: int) -> None:
        self.stats.selections += 1
        self.stats.total_cycles += cycles
        self.stats.comparator_ops += comparator_ops
        self.stats.energy_pj += comparator_ops * self.energy_per_compare_pj

    def expected_cycles(self, n: int, k: Optional[int] = None) -> float:
        """Closed-form expected cost (used by the pipeline scheduler).

        Quick-select processes a geometrically shrinking series of
        partitions, ~2n elements in expectation, plus the final filter
        pass over n elements.
        """
        if n <= 0:
            return 0.0
        expected_rounds = max(1.0, math.log2(max(n, 2)))
        partition_work = 2.0 * n
        cycles = (partition_work + n) / self.parallelism
        cycles += expected_rounds * (
            self.pivot_cycles + self.eliminator.latency_cycles(n)
        )
        return float(cycles)

    def reset(self) -> None:
        self.stats = TopKEngineStats()
        self.eliminator.reset()
