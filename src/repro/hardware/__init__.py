"""Cycle-level SpAtten accelerator simulator.

Components mirror the paper's Fig. 8 block diagram: HBM + crossbars +
FIFOs + bitwidth converter (memory system), Q x K and prob x V
multiplier arrays with reconfigurable adder trees, the softmax /
progressive-quantization pipeline, the quick-select top-k engines with
zero eliminators, and the energy/area models calibrated to the paper's
published breakdowns (Table II, Fig. 13).
"""

from .accelerator import SimReport, SpAttenSimulator, StepCost
from .arch_config import SPATTEN_EIGHTH, SPATTEN_FULL, ArchConfig
from .area import PAPER_AREA_MM2, AreaBreakdown, area_model
from .bitwidth_converter import BitwidthConverter
from .crossbar import Crossbar
from .energy import DEFAULT_ENERGY, EnergyBreakdown, EnergyModel
from .hbm import HBMConfig, HBMModel, HBMTransfer
from .modules import ModuleStats, ProbVModule, QKModule, SoftmaxUnit
from .sorter import BatcherSorter, SortResult, batcher_network, sort_with_network
from .spatten_e2e import E2EReport, SpAttenE2ESimulator, fc_weight_bytes_per_block
from .sram import SRAM, Fifo, SRAMStats
from .topk_engine import TopKEngine, TopKEngineStats, TopKResult
from .zero_eliminator import ZeroEliminator, shift_network_eliminate

__all__ = [
    "SimReport",
    "SpAttenSimulator",
    "StepCost",
    "SPATTEN_EIGHTH",
    "SPATTEN_FULL",
    "ArchConfig",
    "PAPER_AREA_MM2",
    "AreaBreakdown",
    "area_model",
    "BitwidthConverter",
    "Crossbar",
    "DEFAULT_ENERGY",
    "EnergyBreakdown",
    "EnergyModel",
    "HBMConfig",
    "HBMModel",
    "HBMTransfer",
    "ModuleStats",
    "ProbVModule",
    "QKModule",
    "SoftmaxUnit",
    "BatcherSorter",
    "SortResult",
    "batcher_network",
    "sort_with_network",
    "E2EReport",
    "SpAttenE2ESimulator",
    "fc_weight_bytes_per_block",
    "SRAM",
    "Fifo",
    "SRAMStats",
    "TopKEngine",
    "TopKEngineStats",
    "TopKResult",
    "ZeroEliminator",
    "shift_network_eliminate",
]
