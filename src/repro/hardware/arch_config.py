"""SpAtten architectural parameters (paper Table I).

The full-scale design: 1 GHz, 512 multipliers in the Q x K module plus
512 in the attention_prob x V module (2 TFLOPS computation roof), two
196 KB SRAMs for keys and values, a softmax pipeline of parallelism 8,
top-k engines with 16 comparators per array, a 32x16 address crossbar in
front of 16 HBM2 channels of 32 GB/s each (512 GB/s roof).

``SPATTEN_EIGHTH`` is the 1/8-scale variant used for the apples-to-
apples comparison with A3 and MNNFast (Table III: 128 multipliers,
64 GB/s).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["ArchConfig", "SPATTEN_FULL", "SPATTEN_EIGHTH"]


@dataclass(frozen=True)
class ArchConfig:
    """Hardware configuration of one SpAtten instance."""

    name: str = "spatten"
    clock_hz: float = 1.0e9
    qk_multipliers: int = 512
    probv_multipliers: int = 512
    softmax_parallelism: int = 8
    topk_parallelism: int = 16
    key_sram_bytes: int = 196 * 1024
    value_sram_bytes: int = 196 * 1024
    hbm_channels: int = 16
    hbm_channel_bandwidth: float = 32.0e9  # bytes/s per channel
    fifo_depth: int = 64
    onchip_bits: int = 12
    #: Achievable fraction of peak DRAM bandwidth under the gather-heavy
    #: access patterns of pruned attention (crossbar keeps channels busy
    #: but row misses and short bursts cost efficiency).  Calibrated so
    #: the memory-bound GPT-2 generation stage lands at the paper's
    #: measured ~0.43 TFLOPS (Fig. 18).
    dram_efficiency: float = 0.42
    #: Achieved fraction of the datapath's ideal throughput, covering
    #: row-softmax serialisation bubbles, SRAM bank conflicts, control
    #: overhead, and progressive-quantization recompute stalls.
    #: Calibrated so compute-bound BERT lands at the paper's measured
    #: 1.61 TFLOPS dense-equivalent throughput (Fig. 18).
    compute_efficiency: float = 0.57
    #: Pipeline fill/drain cycles charged once per (layer, stage) pass.
    pipeline_fill_cycles: int = 96

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if min(self.qk_multipliers, self.probv_multipliers) <= 0:
            raise ValueError("multiplier counts must be positive")
        if not 0.0 < self.dram_efficiency <= 1.0:
            raise ValueError("dram_efficiency must be in (0, 1]")

    @property
    def total_multipliers(self) -> int:
        return self.qk_multipliers + self.probv_multipliers

    @property
    def compute_roof_flops(self) -> float:
        """Peak FLOP/s (each multiplier performs one MAC = 2 FLOPs/cycle)."""
        return self.total_multipliers * 2.0 * self.clock_hz

    @property
    def dram_bandwidth(self) -> float:
        """Peak DRAM bandwidth in bytes/s."""
        return self.hbm_channels * self.hbm_channel_bandwidth

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bandwidth / self.clock_hz

    def scaled(self, factor: float, name: str = None) -> "ArchConfig":
        """A proportionally scaled instance (e.g. 1/8 for Table III).

        Compute resources and memory bandwidth scale together, matching
        the paper's SpAtten-1/8 (128 multipliers, 64 GB/s).
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        # Narrow datapaths are easier to keep busy: the utilisation
        # losses folded into compute_efficiency (row-serialisation
        # bubbles, bank conflicts across a 512-wide array) shrink as the
        # array narrows, so small instances run closer to ideal.
        efficiency = self.compute_efficiency
        if factor < 1.0:
            efficiency = min(0.80, efficiency * 1.35)
        return dataclasses.replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            compute_efficiency=efficiency,
            qk_multipliers=max(1, int(round(self.qk_multipliers * factor))),
            probv_multipliers=max(1, int(round(self.probv_multipliers * factor))),
            softmax_parallelism=max(1, int(round(self.softmax_parallelism * factor * 8) / 8)),
            topk_parallelism=max(1, int(round(self.topk_parallelism * factor * 8) / 8)),
            key_sram_bytes=max(1024, int(self.key_sram_bytes * factor)),
            value_sram_bytes=max(1024, int(self.value_sram_bytes * factor)),
            hbm_channels=max(1, int(round(self.hbm_channels * factor))),
        )

    def with_overrides(self, **kwargs) -> "ArchConfig":
        return dataclasses.replace(self, **kwargs)


SPATTEN_FULL = ArchConfig()
SPATTEN_EIGHTH = SPATTEN_FULL.scaled(1.0 / 8.0, name="spatten-1/8")
