"""Cycle-level SpAtten simulator (paper Section IV, Fig. 8).

Consumes an :class:`~repro.core.trace.AttentionTrace` (work shapes after
cascade pruning and quantization) and produces latency, energy, power,
and DRAM-traffic reports.

Pipeline model.  The critical path (Q-K-V fetch -> Q x K -> softmax ->
prob x V) is fully pipelined; one (head, query) occupies each stage for
its own cycle count, so steady-state throughput is set by the *slowest*
stage, and DRAM transfers overlap with compute (double-buffered SRAMs).
Per layer pass:

    layer_cycles = max(compute_pipeline, dram_transfer, token_topk)
                   + pipeline_fill

where ``compute_pipeline = n_heads * n_queries * max(stage cycles)`` and
the token-importance top-k runs "in parallel with the critical path"
(Section IV-A) and therefore only binds when it is the bottleneck — this
is exactly the effect Fig. 20 shows when the engine's parallelism is
reduced to 1.

The local value-pruning top-k partitions stream at ``parallelism``
comparisons per cycle with the filter pass overlapped on the second
comparator bank, so its per-query cost is ``2 * n_keys / parallelism``
cycles — at the default parallelism of 16 this matches the Q x K
module's 8 keys/cycle output rate, which is why the paper selected 16
(Fig. 19).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.trace import AttentionTrace, LayerStep
from ..eval.dram import step_attention_bytes
from .arch_config import ArchConfig, SPATTEN_FULL
from .bitwidth_converter import BitwidthConverter
from .crossbar import Crossbar
from .energy import DEFAULT_ENERGY, EnergyBreakdown, EnergyModel
from .hbm import HBMConfig, HBMModel
from .modules import ProbVModule, QKModule, SoftmaxUnit
from .sram import SRAM
from .topk_engine import TopKEngine

__all__ = ["StepCost", "SimReport", "SpAttenSimulator"]


@dataclass
class StepCost:
    """Cycle accounting of one (layer, stage) pass."""

    layer: int
    stage: str
    compute_cycles: float
    dram_cycles: float
    token_topk_cycles: float
    fill_cycles: float
    dram_bytes: float

    @property
    def total_cycles(self) -> float:
        return (
            max(self.compute_cycles, self.dram_cycles, self.token_topk_cycles)
            + self.fill_cycles
        )

    @property
    def bottleneck(self) -> str:
        values = {
            "compute": self.compute_cycles,
            "dram": self.dram_cycles,
            "token_topk": self.token_topk_cycles,
        }
        return max(values, key=values.get)


@dataclass
class SimReport:
    """Simulation outcome for one workload trace."""

    arch_name: str
    total_cycles: float
    latency_s: float
    summarize_cycles: float
    decode_cycles: float
    dram_bytes: float
    energy: EnergyBreakdown
    attention_flops_performed: float
    step_costs: List[StepCost] = field(default_factory=list)
    module_energy_pj: Dict[str, float] = field(default_factory=dict)

    @property
    def effective_tflops(self) -> float:
        """Performed attention FLOPs per second (paper Section V-B)."""
        if self.latency_s <= 0:
            return 0.0
        return self.attention_flops_performed / self.latency_s / 1e12

    @property
    def average_power_w(self) -> float:
        if self.latency_s <= 0:
            return 0.0
        return self.energy.total_j / self.latency_s

    @property
    def bottleneck_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for cost in self.step_costs:
            hist[cost.bottleneck] = hist.get(cost.bottleneck, 0) + 1
        return hist


class SpAttenSimulator:
    """Composable cycle/energy simulator for one SpAtten instance."""

    def __init__(
        self,
        arch: ArchConfig = SPATTEN_FULL,
        energy: EnergyModel = DEFAULT_ENERGY,
        hbm: Optional[HBMConfig] = None,
    ):
        self.arch = arch
        self.energy_model = energy
        if hbm is None:
            hbm = HBMConfig(
                n_channels=arch.hbm_channels,
                channel_bandwidth=arch.hbm_channel_bandwidth,
                clock_hz=arch.clock_hz,
                random_efficiency=arch.dram_efficiency,
            )
        self.hbm = HBMModel(hbm)
        self.qk = QKModule(arch.qk_multipliers, energy)
        self.softmax = SoftmaxUnit(arch.softmax_parallelism, energy)
        self.probv = ProbVModule(arch.probv_multipliers, energy)
        self.token_topk = TopKEngine(parallelism=arch.topk_parallelism)
        self.key_sram = SRAM("key", arch.key_sram_bytes)
        self.value_sram = SRAM("value", arch.value_sram_bytes)
        self.crossbar = Crossbar(32, arch.hbm_channels,
                                 energy.crossbar_request_pj)
        self.converter = BitwidthConverter(arch.onchip_bits,
                                           energy.converter_element_pj)
        self._accumulate_energy_pj = 0.0
        self._fifo_energy_pj = 0.0

    def reset(self) -> None:
        from .modules import ModuleStats

        self.hbm.reset()
        self.qk.stats = ModuleStats()
        self.softmax.stats = ModuleStats()
        self.probv.stats = ModuleStats()
        self.token_topk.reset()
        self.key_sram.reset()
        self.value_sram.reset()
        self.crossbar.reset()
        self.converter.reset()
        self._accumulate_energy_pj = 0.0
        self._fifo_energy_pj = 0.0

    # ------------------------------------------------------------------
    # Per-step cost model
    # ------------------------------------------------------------------
    def _value_topk_cycles_per_query(self, n_keys: int) -> float:
        """Local value-pruning quick-select, filter bank overlapped."""
        if n_keys == 0:
            return 0.0
        return 2.0 * n_keys / self.arch.topk_parallelism

    def _sram_spill_factor(self, step: LayerStep, head_dim: int) -> float:
        """Refetch multiplier when a head's keys overflow the Key SRAM."""
        onchip_bytes = step.n_keys * head_dim * self.arch.onchip_bits / 8.0
        usable = self.key_sram.usable_bytes
        if onchip_bytes <= usable:
            return 1.0
        return math.ceil(onchip_bytes / usable)

    def _step_cost(self, step: LayerStep, trace: AttentionTrace) -> StepCost:
        model = trace.model
        head_dim = model.head_dim
        arch = self.arch
        pruning = trace.pruning
        value_pruning_on = pruning is not None and pruning.value_keep < 1.0
        token_pruning_on = pruning is not None and pruning.token_keep_final < 1.0
        head_pruning_on = pruning is not None and pruning.head_keep_final < 1.0

        # --- compute pipeline -----------------------------------------
        stage_candidates = [
            self.qk.query_cycles(step.n_keys, head_dim),
            self.softmax.query_cycles(step.n_keys),
            self.probv.query_cycles(step.n_values, head_dim),
        ]
        if value_pruning_on:
            # The per-query local value-pruning top-k joins the pipeline.
            stage_candidates.append(self._value_topk_cycles_per_query(step.n_keys))
        stage_cycles = max(stage_candidates)
        n_query_slots = step.n_heads * step.n_queries
        compute_cycles = n_query_slots * stage_cycles / arch.compute_efficiency

        self.qk.account(n_query_slots, step.n_keys, head_dim)
        self.softmax.account(n_query_slots, step.n_keys)
        self.probv.account(n_query_slots, step.n_values, head_dim)

        # --- token/head-importance top-k (parallel with critical path) --
        token_topk_cycles = 0.0
        if token_pruning_on or head_pruning_on:
            token_topk_cycles = self.token_topk.expected_cycles(step.n_keys)

        # --- DRAM -------------------------------------------------------
        traffic = step_attention_bytes(step, model, trace.quant)
        spill = self._sram_spill_factor(step, head_dim)
        key_transfer = self.hbm.transfer(traffic.key * spill, random_access=True)
        value_transfer = self.hbm.transfer(traffic.value, random_access=True)
        query_transfer = self.hbm.transfer(traffic.query, random_access=False)
        out_transfer = self.hbm.transfer(traffic.output, random_access=False)
        dram_cycles = (
            key_transfer.cycles
            + value_transfer.cycles
            + query_transfer.cycles
            + out_transfer.cycles
        )
        dram_bytes = traffic.total + traffic.key * (spill - 1.0)

        # --- SRAM / interconnect activity -------------------------------
        onchip_elem_bytes = arch.onchip_bits / 8.0
        key_set_bytes = step.n_keys * head_dim * onchip_elem_bytes
        value_set_bytes = step.n_values * head_dim * onchip_elem_bytes
        self.key_sram.write(step.n_heads * key_set_bytes)
        self.value_sram.write(step.n_heads * value_set_bytes)
        self.key_sram.read(n_query_slots * key_set_bytes)
        self.value_sram.read(n_query_slots * value_set_bytes)

        n_requests = int(math.ceil(dram_bytes / self.hbm.config.interleave_bytes))
        self.crossbar.route(n_requests)
        n_fetched_elems = (
            (step.n_queries + step.n_keys + step.n_values)
            * step.n_heads
            * head_dim
        )
        self.converter.account_elements(int(n_fetched_elems))
        self._fifo_energy_pj += dram_bytes * 8.0 * self.energy_model.fifo_pj_per_bit
        # Importance-score accumulation: one add per attention probability.
        self._accumulate_energy_pj += (
            n_query_slots * step.n_keys * self.energy_model.accumulate_pj
        )

        return StepCost(
            layer=step.layer,
            stage=step.stage,
            compute_cycles=compute_cycles,
            dram_cycles=dram_cycles,
            token_topk_cycles=token_topk_cycles,
            fill_cycles=float(arch.pipeline_fill_cycles),
            dram_bytes=dram_bytes,
        )

    # ------------------------------------------------------------------
    # Trace execution
    # ------------------------------------------------------------------
    def run_trace(self, trace: AttentionTrace) -> SimReport:
        """Simulate a full workload trace; returns the cost report."""
        self.reset()
        step_costs = [self._step_cost(step, trace) for step in trace.steps]

        summarize_cycles = sum(
            c.total_cycles for c in step_costs if c.stage == "summarize"
        )
        decode_cycles = sum(
            c.total_cycles for c in step_costs if c.stage == "decode"
        )
        total_cycles = summarize_cycles + decode_cycles
        latency_s = total_cycles / self.arch.clock_hz

        module_energy = {
            "qk_module": self.qk.stats.energy_pj,
            "softmax": self.softmax.stats.energy_pj,
            "probv_module": self.probv.stats.energy_pj,
            "topk_engines": self.token_topk.stats.energy_pj
            + self._value_topk_energy_pj(trace),
            "qkv_fetcher": self.crossbar.stats.energy_pj
            + self.converter.stats.energy_pj
            + self._fifo_energy_pj,
            "accumulators": self._accumulate_energy_pj,
        }
        compute_logic_pj = sum(module_energy.values())
        sram_pj = self.key_sram.stats.energy_pj + self.value_sram.stats.energy_pj
        dram_dynamic_j = self.hbm.total_energy_pj * 1e-12
        dram_static_j = self.hbm.config.static_power_w * latency_s
        energy = EnergyBreakdown(
            compute_logic_j=compute_logic_pj * 1e-12,
            sram_j=sram_pj * 1e-12,
            dram_j=dram_dynamic_j + dram_static_j,
        )

        attention_flops = 2.0 * (self.qk.stats.operations + self.probv.stats.operations)
        return SimReport(
            arch_name=self.arch.name,
            total_cycles=total_cycles,
            latency_s=latency_s,
            summarize_cycles=summarize_cycles,
            decode_cycles=decode_cycles,
            dram_bytes=self.hbm.total_bytes,
            energy=energy,
            attention_flops_performed=attention_flops,
            step_costs=step_costs,
            module_energy_pj=module_energy,
        )

    def _value_topk_energy_pj(self, trace: AttentionTrace) -> float:
        """Comparator energy of the per-query local value-pruning top-k."""
        total = 0.0
        for step in trace.steps:
            comparisons = 2.0 * step.n_keys * step.n_heads * step.n_queries
            total += comparisons * self.energy_model.compare_pj
        return total
