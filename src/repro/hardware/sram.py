"""On-chip SRAM and FIFO models with CACTI-style energy accounting.

The paper's memory system (Section IV-A): two 196 KB SRAMs for keys and
values (double-buffered, sized for a 1024-token context at 12 bits:
2 x 1024 x 64 x 12 bit = 196 KB), 32 address FIFOs of depth 64 behind
the Q-K-V fetcher and 32 data FIFOs before the bitwidth converter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generic, List, Optional, TypeVar

__all__ = ["SRAM", "SRAMStats", "Fifo"]

T = TypeVar("T")


@dataclass
class SRAMStats:
    reads: int = 0
    writes: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    energy_pj: float = 0.0


class SRAM:
    """Capacity-checked scratchpad with access-energy accounting.

    Args:
        capacity_bytes: total size (double-buffering included).
        read_energy_pj_per_bit / write_energy_pj_per_bit: CACTI-class
            constants for a ~196 KB 40 nm macro.
        double_buffered: if True, only half the capacity is usable by a
            single working set (the other half is being filled).
    """

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        read_energy_pj_per_bit: float = 0.22,
        write_energy_pj_per_bit: float = 0.26,
        double_buffered: bool = True,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.read_energy_pj_per_bit = read_energy_pj_per_bit
        self.write_energy_pj_per_bit = write_energy_pj_per_bit
        self.double_buffered = double_buffered
        self.stats = SRAMStats()

    @property
    def usable_bytes(self) -> int:
        return self.capacity_bytes // 2 if self.double_buffered else self.capacity_bytes

    def fits(self, n_bytes: float) -> bool:
        return n_bytes <= self.usable_bytes

    def write(self, n_bytes: float) -> None:
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        self.stats.writes += 1
        self.stats.bytes_written += n_bytes
        self.stats.energy_pj += n_bytes * 8.0 * self.write_energy_pj_per_bit

    def read(self, n_bytes: float) -> None:
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        self.stats.reads += 1
        self.stats.bytes_read += n_bytes
        self.stats.energy_pj += n_bytes * 8.0 * self.read_energy_pj_per_bit

    def reset(self) -> None:
        self.stats = SRAMStats()


class Fifo(Generic[T]):
    """Bounded FIFO mirroring the hardware queues (depth 64 by default).

    Used by the cycle-stepped top-k engine; occupancy overflow raises,
    matching the back-pressure the real design must apply.
    """

    def __init__(self, depth: int = 64, name: str = "fifo"):
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self.name = name
        self._items: Deque[T] = deque()
        self.max_occupancy = 0
        self.total_pushes = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, item: T) -> None:
        if self.full:
            raise OverflowError(f"{self.name}: push into full FIFO (depth {self.depth})")
        self._items.append(item)
        self.total_pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._items))

    def pop(self) -> T:
        if self.empty:
            raise IndexError(f"{self.name}: pop from empty FIFO")
        return self._items.popleft()

    def drain(self) -> List[T]:
        items = list(self._items)
        self._items.clear()
        return items

    def clear(self) -> None:
        self._items.clear()
