"""Address/data crossbars between the Q-K-V fetcher and the HBM channels.

Section IV-D: a 32x16 crossbar routes read requests from 32 request
FIFOs to 16 HBM channels (master side larger than slave side), and a
16x32 crossbar returns data in order.  Because the fetcher emits at most
one request per channel per cycle there are no conflicts; throughput is
therefore ``min(n_requests_per_cycle, n_channels)`` routed per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Crossbar", "CrossbarStats"]


@dataclass
class CrossbarStats:
    routed_requests: int = 0
    cycles: float = 0.0
    energy_pj: float = 0.0


class Crossbar:
    """Cycle/energy model of an NxM request router."""

    def __init__(
        self,
        n_masters: int = 32,
        n_slaves: int = 16,
        energy_per_request_pj: float = 1.1,
    ):
        if n_masters <= 0 or n_slaves <= 0:
            raise ValueError("port counts must be positive")
        self.n_masters = n_masters
        self.n_slaves = n_slaves
        self.energy_per_request_pj = energy_per_request_pj
        self.stats = CrossbarStats()

    def route(self, n_requests: int) -> float:
        """Route ``n_requests`` independent requests; returns cycles.

        With one request per slave per cycle, ``n_slaves`` requests
        complete each cycle.
        """
        if n_requests < 0:
            raise ValueError("n_requests must be non-negative")
        cycles = float(np.ceil(n_requests / self.n_slaves)) if n_requests else 0.0
        self.stats.routed_requests += n_requests
        self.stats.cycles += cycles
        self.stats.energy_pj += n_requests * self.energy_per_request_pj
        return cycles

    def route_channel_requests(self, per_channel: Sequence[int]) -> float:
        """Route per-channel request counts; bottleneck is the busiest slave."""
        per_channel = np.asarray(per_channel)
        if len(per_channel) > self.n_slaves:
            raise ValueError("more channels than slave ports")
        if np.any(per_channel < 0):
            raise ValueError("request counts must be non-negative")
        n_requests = int(per_channel.sum())
        cycles = float(per_channel.max()) if n_requests else 0.0
        self.stats.routed_requests += n_requests
        self.stats.cycles += cycles
        self.stats.energy_pj += n_requests * self.energy_per_request_pj
        return cycles

    def reset(self) -> None:
        self.stats = CrossbarStats()
