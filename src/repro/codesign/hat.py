"""Hardware-aware Transformer co-design for SpAtten-e2e (Fig. 16/17).

The paper searches a HAT-style space — embedding dim [512, 640, 768],
FFN hidden dim [512, 1024, 2048, 3072], decoder layers 1..6, and
arbitrary encoder-decoder attention for the last three decoder layers —
for encoder-decoder Transformers (WMT'14 En-De) that are fast *on
SpAtten-e2e specifically*.  Because SpAtten makes attention nearly free
while FC weights must stream from DRAM every generated token, the
optimizer discovers attention-heavy / FFN-light designs: "the
co-designed model has larger attention FLOPs [but] the FC computation
can be largely shrunk" (Fig. 17), yielding 1.9x speedup and 2.8x size
reduction over vanilla Transformer-Big at matched quality.

Quality is scored by a calibrated BLEU surrogate: a saturating function
of model capacity (log-parameters and log-attention-FLOPs), pinned to
the published vanilla points (Transformer-Base ~27.6 BLEU,
Transformer-Big ~28.4).  The *search dynamics* — what the latency model
rewards — are the reproduction target; the surrogate only has to be
monotone and saturating in capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.arch_config import ArchConfig, SPATTEN_FULL

__all__ = [
    "TransformerDesign",
    "DesignPoint",
    "SEARCH_SPACE",
    "TRANSFORMER_BASE",
    "TRANSFORMER_BIG",
    "design_parameters",
    "design_flops",
    "spatten_e2e_latency",
    "bleu_surrogate",
    "evaluate_design",
    "evolutionary_search",
    "vanilla_layer_scaling",
    "vanilla_dim_scaling",
]

#: The paper's search space (Section V-B, "Co-design Model Architecture").
SEARCH_SPACE = {
    "embed_dim": (512, 640, 768),
    "ffn_dim": (512, 1024, 2048, 3072),
    "n_decoder_layers": (1, 2, 3, 4, 5, 6),
    "arbitrary_attn": (1, 2, 3),  # encoder layers attended by the last 3
}

#: Translation workload used for latency scoring: a 30-token source
#: sentence translated into 30 tokens (paper's WMT'14 En-De setting).
SRC_LEN = 30
TGT_LEN = 30


@dataclass(frozen=True)
class TransformerDesign:
    """One encoder-decoder architecture in the HAT space."""

    embed_dim: int
    ffn_dim: int
    n_decoder_layers: int
    n_encoder_layers: int = 6
    n_heads: int = 8
    arbitrary_attn: Tuple[int, ...] = (1, 1, 1)  # last-3-layer spans

    def __post_init__(self) -> None:
        if self.embed_dim % self.n_heads:
            raise ValueError("embed_dim must be divisible by n_heads")
        if len(self.arbitrary_attn) != 3:
            raise ValueError("arbitrary_attn fixes the last three layers")

    @property
    def label(self) -> str:
        return (
            f"E{self.embed_dim}-F{self.ffn_dim}-D{self.n_decoder_layers}"
            f"-A{''.join(map(str, self.arbitrary_attn))}"
        )


TRANSFORMER_BASE = TransformerDesign(512, 2048, 6)
TRANSFORMER_BIG = TransformerDesign(1024, 4096, 6, n_heads=16)


def design_parameters(design: TransformerDesign) -> float:
    """Weight count (encoder + decoder blocks, embeddings excluded)."""
    e, f = design.embed_dim, design.ffn_dim
    enc_layer = 4 * e * e + 2 * e * f
    dec_layer = 8 * e * e + 2 * e * f  # self-attn + cross-attn + FFN
    return float(
        design.n_encoder_layers * enc_layer + design.n_decoder_layers * dec_layer
    )


def design_flops(design: TransformerDesign) -> Tuple[float, float]:
    """(attention_flops, fc_flops) to translate one sentence.

    Attention FLOPs are the QK + prob x V products (the paper's Fig. 17
    accounting); FC FLOPs cover projections and FFNs.  The encoder runs
    once over SRC_LEN tokens; the decoder generates TGT_LEN tokens
    autoregressively.
    """
    e, f = design.embed_dim, design.ffn_dim
    # Encoder: self-attention over the batch of SRC_LEN tokens.
    attn = design.n_encoder_layers * 2.0 * 2.0 * SRC_LEN * SRC_LEN * e
    fc = design.n_encoder_layers * SRC_LEN * 2.0 * (4.0 * e * e + 2.0 * e * f)
    # Decoder: per generated token, self-attention over the growing
    # target prefix plus cross-attention over the encoder memory.
    for layer in range(design.n_decoder_layers):
        span_idx = layer - (design.n_decoder_layers - 3)
        span = design.arbitrary_attn[span_idx] if span_idx >= 0 else 1
        cross_keys = SRC_LEN * span  # arbitrary-attn widens the memory
        for t in range(1, TGT_LEN + 1):
            attn += 2.0 * 2.0 * t * e  # self-attention (QK + PV)
            attn += 2.0 * 2.0 * cross_keys * e  # cross-attention
        fc += TGT_LEN * 2.0 * (8.0 * e * e + 2.0 * e * f)
    return attn, fc


def spatten_e2e_latency(
    design: TransformerDesign,
    arch: ArchConfig = SPATTEN_FULL,
    fc_bits: int = 8,
) -> float:
    """Seconds to translate one sentence on SpAtten-e2e.

    The encoder streams each layer's weights once (batch reuse); every
    decoder step streams every decoder layer's weights (matrix-vector,
    bandwidth-bound) — the asymmetry that drives the co-design.
    """
    e, f = design.embed_dim, design.ffn_dim
    bandwidth = arch.dram_bandwidth * arch.dram_efficiency
    attn_flops, _ = design_flops(design)

    enc_weight_bytes = design.n_encoder_layers * (4 * e * e + 2 * e * f) * fc_bits / 8
    dec_weight_bytes_per_step = (
        design.n_decoder_layers * (8 * e * e + 2 * e * f) * fc_bits / 8
    )
    fc_stream_s = (enc_weight_bytes + TGT_LEN * dec_weight_bytes_per_step) / bandwidth

    fc_compute_s = 0.0  # overlapped with the stream (matrix-vector)
    attn_s = attn_flops / (arch.compute_roof_flops * arch.compute_efficiency)
    return fc_stream_s + fc_compute_s + attn_s


def bleu_surrogate(design: TransformerDesign) -> float:
    """Calibrated BLEU proxy: saturating in capacity.

    Capacity mixes log-parameters and log-attention-FLOPs; constants are
    pinned so vanilla Transformer-Base evaluates to ~27.6 BLEU and
    Transformer-Big to ~28.4 (the paper's published WMT'14 En-De
    anchors).
    """
    params = design_parameters(design)
    attn_flops, _ = design_flops(design)
    # Attention capacity carries most of the quality signal (HAT's and
    # the paper's empirical finding: FFN width is the most shrinkable
    # dimension at matched BLEU, decoder depth/attention the least).
    capacity = 0.32 * math.log(params / 1e6) + 0.68 * math.log(attn_flops / 1e6)
    return 28.9 - 44.6 * math.exp(-1.025 * capacity)


@dataclass
class DesignPoint:
    """A scored design."""

    design: TransformerDesign
    bleu: float
    latency_s: float
    parameters: float
    attention_flops: float
    fc_flops: float


def evaluate_design(
    design: TransformerDesign, arch: ArchConfig = SPATTEN_FULL, fc_bits: int = 8
) -> DesignPoint:
    attn, fc = design_flops(design)
    return DesignPoint(
        design=design,
        bleu=bleu_surrogate(design),
        latency_s=spatten_e2e_latency(design, arch, fc_bits),
        parameters=design_parameters(design),
        attention_flops=attn,
        fc_flops=fc,
    )


def _random_design(rng: np.random.Generator) -> TransformerDesign:
    return TransformerDesign(
        embed_dim=int(rng.choice(SEARCH_SPACE["embed_dim"])),
        ffn_dim=int(rng.choice(SEARCH_SPACE["ffn_dim"])),
        n_decoder_layers=int(rng.choice(SEARCH_SPACE["n_decoder_layers"])),
        arbitrary_attn=tuple(
            int(rng.choice(SEARCH_SPACE["arbitrary_attn"])) for _ in range(3)
        ),
    )


def _mutate(design: TransformerDesign, rng: np.random.Generator) -> TransformerDesign:
    fields = dict(
        embed_dim=design.embed_dim,
        ffn_dim=design.ffn_dim,
        n_decoder_layers=design.n_decoder_layers,
        arbitrary_attn=list(design.arbitrary_attn),
    )
    which = rng.integers(4)
    if which == 0:
        fields["embed_dim"] = int(rng.choice(SEARCH_SPACE["embed_dim"]))
    elif which == 1:
        fields["ffn_dim"] = int(rng.choice(SEARCH_SPACE["ffn_dim"]))
    elif which == 2:
        fields["n_decoder_layers"] = int(
            rng.choice(SEARCH_SPACE["n_decoder_layers"])
        )
    else:
        slot = int(rng.integers(3))
        fields["arbitrary_attn"][slot] = int(
            rng.choice(SEARCH_SPACE["arbitrary_attn"])
        )
    fields["arbitrary_attn"] = tuple(fields["arbitrary_attn"])
    return TransformerDesign(**fields)


def evolutionary_search(
    latency_constraint_s: float,
    arch: ArchConfig = SPATTEN_FULL,
    fc_bits: int = 8,
    population: int = 48,
    generations: int = 30,
    seed: int = 0,
) -> DesignPoint:
    """Best design under a latency constraint (HAT-style evolution).

    Fitness is the BLEU surrogate; designs over the latency constraint
    are penalised proportionally to their violation.
    """
    if latency_constraint_s <= 0:
        raise ValueError("latency constraint must be positive")
    rng = np.random.default_rng(seed)
    pop: List[DesignPoint] = [
        evaluate_design(_random_design(rng), arch, fc_bits)
        for _ in range(population)
    ]

    def fitness(point: DesignPoint) -> float:
        penalty = max(0.0, point.latency_s / latency_constraint_s - 1.0)
        return point.bleu - 50.0 * penalty

    for _ in range(generations):
        pop.sort(key=fitness, reverse=True)
        parents = pop[: population // 4]
        children: List[DesignPoint] = []
        while len(children) < population - len(parents):
            parent = parents[int(rng.integers(len(parents)))]
            children.append(
                evaluate_design(_mutate(parent.design, rng), arch, fc_bits)
            )
        pop = parents + children
    pop.sort(key=fitness, reverse=True)
    feasible = [p for p in pop if p.latency_s <= latency_constraint_s]
    return feasible[0] if feasible else pop[0]


def vanilla_layer_scaling(
    arch: ArchConfig = SPATTEN_FULL, fc_bits: int = 8
) -> List[DesignPoint]:
    """Vanilla Transformer-Base with 1..6 decoder layers (Fig. 16 curve)."""
    return [
        evaluate_design(
            TransformerDesign(512, 2048, n_layers), arch, fc_bits
        )
        for n_layers in range(1, 7)
    ]


def vanilla_dim_scaling(
    arch: ArchConfig = SPATTEN_FULL, fc_bits: int = 8
) -> List[DesignPoint]:
    """Vanilla Transformers with scaled width, Base..Big (Fig. 16 curve)."""
    points = []
    for e, f, h in ((256, 1024, 8), (384, 1536, 8), (512, 2048, 8),
                    (640, 2560, 8), (768, 3072, 8), (1024, 4096, 16)):
        points.append(
            evaluate_design(
                TransformerDesign(e, f, 6, n_heads=h), arch, fc_bits
            )
        )
    return points
