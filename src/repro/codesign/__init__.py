"""Hardware-aware Transformer co-design with SpAtten-e2e (Fig. 16/17)."""

from .hat import (
    SEARCH_SPACE,
    SRC_LEN,
    TGT_LEN,
    TRANSFORMER_BASE,
    TRANSFORMER_BIG,
    DesignPoint,
    TransformerDesign,
    bleu_surrogate,
    design_flops,
    design_parameters,
    evaluate_design,
    evolutionary_search,
    spatten_e2e_latency,
    vanilla_dim_scaling,
    vanilla_layer_scaling,
)

__all__ = [
    "SEARCH_SPACE",
    "SRC_LEN",
    "TGT_LEN",
    "TRANSFORMER_BASE",
    "TRANSFORMER_BIG",
    "DesignPoint",
    "TransformerDesign",
    "bleu_surrogate",
    "design_flops",
    "design_parameters",
    "evaluate_design",
    "evolutionary_search",
    "spatten_e2e_latency",
    "vanilla_dim_scaling",
    "vanilla_layer_scaling",
]
