"""Local value pruning (paper Section III-C).

After softmax, the V vectors whose attention probabilities are smallest
are not fetched for the ``attention_prob x V`` computation.  Unlike
cascade token pruning this is *local*: the decision uses only the current
head's probabilities and affects only the current head's V fetch — the
token itself stays alive.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .topk import topk_indices

__all__ = ["local_value_keep_indices", "apply_local_value_pruning"]


def local_value_keep_indices(
    probs: np.ndarray, keep_fraction: float, min_keep: int = 1
) -> List[np.ndarray]:
    """Per-head indices of the V vectors worth fetching.

    Args:
        probs: ``[h, L0, L1]`` attention probabilities of one layer.
        keep_fraction: fraction of the L1 value vectors to keep per head.
        min_keep: lower bound on kept vectors per head.

    Returns:
        A list of ``h`` sorted index arrays into the L1 axis.  Ranking is
        by the head's total probability mass per key column (for the
        generation stage L0 == 1, matching the paper's per-query use).
    """
    probs = np.asarray(probs)
    if probs.ndim != 3:
        raise ValueError("probs must be [heads, queries, keys]")
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    n_keys = probs.shape[2]
    keep_count = max(int(np.ceil(keep_fraction * n_keys)), min(min_keep, n_keys))
    return [
        topk_indices(head_probs.sum(axis=0), keep_count)
        for head_probs in probs
    ]


def apply_local_value_pruning(
    probs: np.ndarray,
    values: np.ndarray,
    kept_per_head: List[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute head outputs using only the kept V vectors.

    Pruned columns simply do not contribute (the paper drops them without
    renormalising the probabilities).

    Args:
        probs: ``[h, L0, L1]``.
        values: ``[h, L1, D]``.
        kept_per_head: output of :func:`local_value_keep_indices`.

    Returns:
        ``(head_outputs [h, L0, D], kept_counts [h])``.
    """
    probs = np.asarray(probs)
    values = np.asarray(values)
    n_heads, n_queries, _ = probs.shape
    head_dim = values.shape[2]
    outputs = np.zeros((n_heads, n_queries, head_dim), dtype=np.float64)
    kept_counts = np.zeros(n_heads, dtype=np.int64)
    for head, kept in enumerate(kept_per_head):
        kept_counts[head] = len(kept)
        outputs[head] = probs[head][:, kept] @ values[head][kept]
    return outputs, kept_counts
