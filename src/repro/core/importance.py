"""Cumulative token and head importance scores (paper Algorithm 2).

Token importance: attention probabilities are accumulated *vertically*
(over query rows, heads, layers, and — for GPT — generation iterations).
A token's column sum measures how much every other token attends to it;
tokens nobody attends to are safe to prune (Fig. 5).

Head importance: the absolute magnitude of each head's output features is
accumulated across layers.  Because one FC processes the concatenation of
all heads, a head with small output magnitude has little influence on
``block_out`` (Section III-B).

Both accumulators are *global* across a sequence's lifetime — this is
what makes the pruning "cascade": scores survive layer boundaries and
(for generation) iteration boundaries, and pruned ids never return.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["TokenImportanceAccumulator", "HeadImportanceAccumulator"]


class TokenImportanceAccumulator:
    """Cumulative token importance, addressed by original sentence position.

    The live token set shrinks as pruning proceeds and (for GPT) grows as
    new tokens are generated, so scores are kept in a dynamically-grown
    dense array indexed by original position.
    """

    def __init__(self, initial_length: int = 0):
        self._scores = np.zeros(int(initial_length), dtype=np.float64)

    def __len__(self) -> int:
        return len(self._scores)

    def ensure_length(self, length: int) -> None:
        """Grow the score array to cover positions ``[0, length)``."""
        if length > len(self._scores):
            grown = np.zeros(length, dtype=np.float64)
            grown[: len(self._scores)] = self._scores
            self._scores = grown

    def accumulate(self, probs: np.ndarray, key_token_ids: np.ndarray) -> None:
        """Add one attention round's probabilities (Algorithm 2 loop).

        Args:
            probs: ``[h, L0, L1]`` attention probabilities of the live
                heads and tokens.
            key_token_ids: ``[L1]`` original positions of the key columns.
        """
        probs = np.asarray(probs)
        if probs.ndim != 3:
            raise ValueError("probs must be [heads, queries, keys]")
        key_token_ids = np.asarray(key_token_ids)
        if probs.shape[2] != len(key_token_ids):
            raise ValueError("key_token_ids must label every key column")
        if len(key_token_ids):
            self.ensure_length(int(key_token_ids.max()) + 1)
        # Sum over heads and query rows -> one scalar per key column.
        column_mass = probs.sum(axis=(0, 1))
        np.add.at(self._scores, key_token_ids, column_mass)

    def scores_for(self, token_ids: np.ndarray) -> np.ndarray:
        """Current cumulative scores of the given original positions."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if len(token_ids) and int(token_ids.max()) >= len(self._scores):
            self.ensure_length(int(token_ids.max()) + 1)
        return self._scores[token_ids]

    @property
    def raw_scores(self) -> np.ndarray:
        """Scores indexed by original position (read-only copy)."""
        return self._scores.copy()


class HeadImportanceAccumulator:
    """Cumulative head importance from output magnitudes (Algorithm 2)."""

    def __init__(self, n_heads: int):
        if n_heads <= 0:
            raise ValueError("n_heads must be positive")
        self._scores = np.zeros(n_heads, dtype=np.float64)

    @property
    def n_heads(self) -> int:
        return len(self._scores)

    def accumulate(self, head_outputs: np.ndarray, head_ids: np.ndarray) -> None:
        """Add one layer's per-head output magnitudes.

        Args:
            head_outputs: ``[h_live, L0, D]`` features ``E`` of the live
                heads (before the output FC).
            head_ids: ``[h_live]`` original indices of those heads.
        """
        head_outputs = np.asarray(head_outputs)
        head_ids = np.asarray(head_ids, dtype=np.int64)
        if head_outputs.ndim != 3 or head_outputs.shape[0] != len(head_ids):
            raise ValueError("head_outputs must be [h_live, L0, D] matching head_ids")
        if len(head_ids) and int(head_ids.max()) >= self.n_heads:
            raise ValueError("head id out of range")
        magnitudes = np.abs(head_outputs).sum(axis=(1, 2))
        np.add.at(self._scores, head_ids, magnitudes)

    def scores_for(self, head_ids: np.ndarray) -> np.ndarray:
        return self._scores[np.asarray(head_ids, dtype=np.int64)]

    @property
    def raw_scores(self) -> np.ndarray:
        return self._scores.copy()
