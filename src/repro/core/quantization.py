"""Linear symmetric quantization with MSB/LSB split (paper Section III-D).

SpAtten stores attention inputs in DRAM as two separately-fetchable bit
chunks: the most-significant ``msb_bits`` and an optional ``lsb_bits``
refinement ("We store MSBs continuously and LSBs continuously in DRAM, so
that they can be fetched separately").  The on-chip pipeline first
computes attention probabilities from MSBs only; if the resulting
distribution is *flat* (max probability below a threshold), the LSBs are
fetched and the probabilities recomputed once.

This module provides:

* :class:`LinearQuantizer` — symmetric uniform quantizer for a given
  total bitwidth, with exact MSB/LSB code splitting and recomposition.
* :func:`msb_only_dequant` / :func:`full_dequant` — the two reads the
  datapath performs.
* :func:`needs_lsb` — the progressive-quantization decision rule.
* :func:`softmax_error_bound` — the theoretical bound of Eq. 2
  (``error = Δs * 2 p0 (1 - p0) < Δs``), used by property tests.
* :func:`quantize_rows` / :func:`dequantize_rows` — vectorized per-row
  symmetric quantization used by the serving hot path's ``int8``
  numerics tier (per-(head, token) scales on KV cache columns).

Edge-case contract (audited before this module went on the hot path):

* **Zero-range rows** quantize with scale 1.0 to all-zero codes — an
  exact round trip, never a division by zero or NaN.
* **Clamp symmetry**: codes live in ``[-qmax, qmax]`` with
  ``qmax = 2^(bits-1) - 1``; the asymmetric most-negative int code
  (−128 at 8 bits) is never produced, so ``dequantize(quantize(x))``
  is always within ``scale/2`` of a representable value and negation
  commutes with the round trip.
* **Non-finite input** (NaN/±Inf) raises :class:`QuantizationRangeError`
  instead of silently producing undefined integer casts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..config import QuantConfig
from ..nn.functional import softmax

__all__ = [
    "LinearQuantizer",
    "QuantizationRangeError",
    "QuantizedTensor",
    "dequantize_rows",
    "needs_lsb",
    "quantize_attention_inputs",
    "quantize_rows",
    "softmax_error_bound",
    "attention_prob_error",
]


class QuantizationRangeError(ValueError):
    """Input holds values a linear quantizer cannot represent (NaN/Inf).

    Casting NaN or ±Inf through ``np.rint(...).astype(int)`` is
    undefined behaviour (platform-dependent garbage codes), so the
    quantizers reject non-finite input loudly instead of corrupting
    the cache silently.
    """


@dataclass
class QuantizedTensor:
    """Integer codes plus the scale needed to dequantize them.

    ``codes`` are signed integers in ``[-(2^(bits-1)-1), 2^(bits-1)-1]``
    (symmetric range; the most negative code is unused, as is standard
    for symmetric linear quantization).
    """

    codes: np.ndarray  # int32
    scale: float
    bits: int

    @property
    def nbytes_dram(self) -> float:
        """DRAM footprint in bytes (bit-packed, as the hardware stores it)."""
        return self.codes.size * self.bits / 8.0


class LinearQuantizer:
    """Symmetric uniform quantizer with an MSB/LSB split.

    Args:
        msb_bits: width of the first chunk.
        lsb_bits: width of the refinement chunk (0 disables the split).

    The full code is ``round(x / scale)`` with
    ``scale = max|x| / (2^(total_bits-1) - 1)``.  The MSB chunk is the
    arithmetic right shift of the full code by ``lsb_bits``; recomposing
    ``(msb << lsb_bits) | lsb`` recovers the full code exactly, which is
    what the on-chip bitwidth converter does when LSBs arrive.
    """

    def __init__(self, msb_bits: int, lsb_bits: int = 0):
        if msb_bits < 2:
            raise ValueError("msb_bits must be >= 2")
        if lsb_bits < 0:
            raise ValueError("lsb_bits must be >= 0")
        self.msb_bits = msb_bits
        self.lsb_bits = lsb_bits

    @property
    def total_bits(self) -> int:
        return self.msb_bits + self.lsb_bits

    def quantize(self, x: np.ndarray) -> QuantizedTensor:
        """Quantize to the full (MSB+LSB) width.

        Zero-range input (all zeros, or empty) uses scale 1.0 so the
        round trip is exact; non-finite input raises
        :class:`QuantizationRangeError`.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.size and not np.isfinite(x).all():
            raise QuantizationRangeError(
                "cannot quantize non-finite values (NaN/Inf in input)"
            )
        max_abs = float(np.max(np.abs(x))) if x.size else 0.0
        qmax = 2 ** (self.total_bits - 1) - 1
        scale = max_abs / qmax if max_abs > 0 else 1.0
        codes = np.clip(np.rint(x / scale), -qmax, qmax).astype(np.int32)
        return QuantizedTensor(codes=codes, scale=scale, bits=self.total_bits)

    def split(self, q: QuantizedTensor) -> Tuple[np.ndarray, np.ndarray]:
        """Split full codes into (msb_chunk, lsb_chunk).

        The MSB chunk is an arithmetic shift (sign-preserving); the LSB
        chunk holds the low ``lsb_bits`` as non-negative residues so that
        ``(msb << lsb_bits) + lsb == full_code`` exactly.
        """
        if self.lsb_bits == 0:
            return q.codes.copy(), np.zeros_like(q.codes)
        msb = q.codes >> self.lsb_bits  # arithmetic shift (floor division)
        lsb = q.codes - (msb << self.lsb_bits)
        return msb, lsb

    def dequantize_full(self, q: QuantizedTensor) -> np.ndarray:
        return q.codes.astype(np.float64) * q.scale

    def dequantize_msb(self, q: QuantizedTensor) -> np.ndarray:
        """Value reconstructed from the MSB chunk alone.

        Equivalent to quantization with step ``scale * 2^lsb_bits`` and a
        floor rounding; the mid-rise offset (+0.5 step) halves the bias.
        """
        if self.lsb_bits == 0:
            return self.dequantize_full(q)
        msb, _ = self.split(q)
        step = q.scale * (1 << self.lsb_bits)
        return (msb.astype(np.float64) + 0.5) * step

    def recompose(self, msb: np.ndarray, lsb: np.ndarray, scale: float) -> np.ndarray:
        """Exact value from both chunks (the LSB-refetch path)."""
        codes = (msb.astype(np.int64) << self.lsb_bits) + lsb.astype(np.int64)
        return codes.astype(np.float64) * scale


def needs_lsb(probs: np.ndarray, threshold: float) -> np.ndarray:
    """Per-row progressive-quantization decision (paper Fig. 6).

    A row (one softmax distribution) needs the LSB refetch when its max
    probability is below ``threshold`` — i.e. no dominant token exists,
    so the quantization error is large (Fig. 7) and more bits are needed.

    Returns a boolean array over rows (all axes of ``probs`` except the
    last are treated as row dimensions).
    """
    probs = np.asarray(probs)
    return probs.max(axis=-1) < threshold


def quantize_attention_inputs(
    q: np.ndarray,
    k: np.ndarray,
    config: QuantConfig,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Quantize Q and K, returning (q_msb_only, k_msb_only, q_full, k_full).

    ``*_msb_only`` simulate the first-pass fetch; ``*_full`` the values
    after the optional LSB refetch.  Dequantized floats are returned so
    the caller can run the standard attention math on either version.
    """
    quantizer = LinearQuantizer(config.msb_bits, config.lsb_bits)
    q_q = quantizer.quantize(q)
    k_q = quantizer.quantize(k)
    return (
        quantizer.dequantize_msb(q_q),
        quantizer.dequantize_msb(k_q),
        quantizer.dequantize_full(q_q),
        quantizer.dequantize_full(k_q),
    )


def softmax_error_bound(probs_row: np.ndarray, delta_s: float) -> float:
    """Theoretical total output error for a score perturbation Δs (Eq. 2).

    If score ``s0`` of a token with probability ``p0`` changes by
    ``Δs``, the summed absolute change of all output probabilities is
    ``Δs * 2 p0 (1 - p0)``, which is strictly less than ``Δs`` (softmax
    attenuates quantization noise).  The bound uses the *largest*
    ``p0 (1-p0)`` over the row, i.e. the worst single-token perturbation.
    """
    probs_row = np.asarray(probs_row, dtype=np.float64)
    worst = float(np.max(probs_row * (1.0 - probs_row)))
    return float(abs(delta_s) * 2.0 * worst)


def attention_prob_error(
    scores_fp: np.ndarray, scores_q: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row (max_prob, mean_abs_prob_error) pairs — the Fig. 7 scatter.

    Args:
        scores_fp: float attention scores ``[..., L1]``.
        scores_q: quantized-then-dequantized scores, same shape.

    Returns:
        ``(max_probs, mean_errors)`` flattened over rows, where
        ``max_probs`` comes from the float probabilities and
        ``mean_errors`` is the mean absolute difference between float and
        quantized probability rows.
    """
    probs_fp = softmax(scores_fp, axis=-1)
    probs_q = softmax(scores_q, axis=-1)
    max_probs = probs_fp.max(axis=-1).reshape(-1)
    mean_errors = np.abs(probs_fp - probs_q).mean(axis=-1).reshape(-1)
    return max_probs, mean_errors


def quantize_rows(
    x: np.ndarray, bits: int = 8, axis: int = -1
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized per-row symmetric quantization along ``axis``.

    Every row (slice along ``axis``) gets its own scale
    ``max|row| / qmax`` with ``qmax = 2^(bits-1) - 1``, so one outlier
    token cannot flatten the whole tensor's resolution — the per-row
    analogue of :meth:`LinearQuantizer.quantize`, shaped for the KV
    cache's ``int8`` storage tier (one scale per head × column).

    Args:
        x: float array.
        bits: total signed bitwidth (codes land in ``[-qmax, qmax]``;
            the asymmetric most-negative code is never produced).
        axis: the row axis the scale is shared across.

    Returns:
        ``(codes, scales)`` — ``codes`` is ``int8`` for ``bits <= 8``
        (``int32`` otherwise) with the shape of ``x``; ``scales`` is
        ``float32`` with ``keepdims`` shape, broadcastable against
        ``codes``.  Zero-range rows get scale 1.0 and all-zero codes
        (exact round trip); non-finite input raises
        :class:`QuantizationRangeError`.
    """
    if bits < 2:
        raise ValueError("bits must be >= 2")
    x = np.asarray(x)
    if x.size and not np.isfinite(x).all():
        raise QuantizationRangeError(
            "cannot quantize non-finite values (NaN/Inf in input)"
        )
    qmax = 2 ** (bits - 1) - 1
    if x.size:
        # fmax skips NaN-propagation logic (input is already known
        # finite), about 2x faster than maximum.reduce on this path.
        max_abs = np.fmax.reduce(np.abs(x), axis=axis, keepdims=True)
    else:  # empty input: no rows, but keep the keepdims shape contract
        shape = list(x.shape)
        shape[axis] = 1
        max_abs = np.zeros(shape)
    scales = np.where(max_abs > 0.0, max_abs / qmax, 1.0).astype(np.float32)
    # A subnormal fp64 range can underflow to 0 in the fp32 cast; such
    # rows quantize to zero codes at scale 1.0 (error below fp32 tiny).
    scales[scales == 0.0] = 1.0
    # Codes are derived from the *stored* (fp32) scales so that
    # dequantize_rows(quantize_rows(x)) round-trips within scale/2.
    codes = np.clip(np.rint(x / scales), -qmax, qmax)
    codes = codes.astype(np.int8 if bits <= 8 else np.int32)
    return codes, scales


def dequantize_rows(
    codes: np.ndarray, scales: np.ndarray, dtype=np.float32
) -> np.ndarray:
    """Reconstruct float rows from :func:`quantize_rows` output."""
    return codes.astype(dtype) * scales
