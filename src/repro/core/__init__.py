"""SpAtten's algorithmic contribution: cascade pruning, progressive
quantization, and the top-k selection machinery.

Typical use::

    from repro.config import PruningConfig, QuantConfig
    from repro.core import SpAttenExecutor

    executor = SpAttenExecutor(
        pruning=PruningConfig(token_keep_final=0.5, head_keep_final=0.75,
                              value_keep=0.9),
        quant=QuantConfig(msb_bits=6, lsb_bits=4, progressive=True),
    )
    result = model.encode(token_ids, executor=executor)
    trace = executor.trace          # feed to repro.hardware / repro.eval
"""

from .head_pruning import HeadPruningDecision, prune_heads
from .importance import HeadImportanceAccumulator, TokenImportanceAccumulator
from .pipeline import SpAttenExecutor
from .quantization import (
    LinearQuantizer,
    QuantizedTensor,
    attention_prob_error,
    needs_lsb,
    quantize_attention_inputs,
    softmax_error_bound,
)
from .schedule import (
    decode_token_target,
    effective_token_keep,
    head_keep_counts,
    head_keep_fractions,
    token_keep_counts,
    token_keep_fractions,
)
from .token_pruning import TokenPruningDecision, prune_tokens
from .topk import QuickSelectStats, filter_topk, quick_select_kth, topk_indices
from .trace import (
    DEFAULT_LSB_FRACTION,
    AttentionTrace,
    LayerStep,
    dense_trace,
    spatten_trace,
)
from .value_pruning import apply_local_value_pruning, local_value_keep_indices

__all__ = [
    "HeadPruningDecision",
    "prune_heads",
    "HeadImportanceAccumulator",
    "TokenImportanceAccumulator",
    "SpAttenExecutor",
    "LinearQuantizer",
    "QuantizedTensor",
    "attention_prob_error",
    "needs_lsb",
    "quantize_attention_inputs",
    "softmax_error_bound",
    "decode_token_target",
    "effective_token_keep",
    "head_keep_counts",
    "head_keep_fractions",
    "token_keep_counts",
    "token_keep_fractions",
    "TokenPruningDecision",
    "prune_tokens",
    "QuickSelectStats",
    "filter_topk",
    "quick_select_kth",
    "topk_indices",
    "DEFAULT_LSB_FRACTION",
    "AttentionTrace",
    "LayerStep",
    "dense_trace",
    "spatten_trace",
    "apply_local_value_pruning",
    "local_value_keep_indices",
]
