"""Cascade token pruning decisions (paper Section III-A, Algorithm 2).

Given the cumulative importance scores of the currently-live tokens and a
keep target from the schedule, select which tokens survive.  Selection is
order-preserving (the hardware top-k engine keeps stream order) and
supports *protected* positions: the [CLS] token of a classifier and the
current query token of a decoder must never be pruned, since the model's
prediction is read from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .topk import topk_indices

__all__ = ["TokenPruningDecision", "prune_tokens"]


@dataclass
class TokenPruningDecision:
    """Outcome of one pruning round.

    ``kept_rows`` index into the *live* array that was scored (ascending,
    order-preserving); ``kept_ids`` / ``pruned_ids`` are the original
    sentence positions.
    """

    kept_rows: np.ndarray
    kept_ids: np.ndarray
    pruned_ids: np.ndarray

    @property
    def n_kept(self) -> int:
        return len(self.kept_rows)


def prune_tokens(
    live_ids: np.ndarray,
    scores: np.ndarray,
    keep_count: int,
    protected_ids: Sequence[int] = (),
) -> TokenPruningDecision:
    """Select the ``keep_count`` most important live tokens.

    Args:
        live_ids: original positions of the live tokens (sorted).
        scores: cumulative importance score of each live token.
        keep_count: how many tokens must survive (clipped to live count;
            at least the number of protected tokens survive).
        protected_ids: original positions that must survive regardless of
            score.

    Returns:
        A :class:`TokenPruningDecision`; ``kept_rows`` are strictly
        increasing so downstream K/V gathering preserves token order.
    """
    live_ids = np.asarray(live_ids, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if live_ids.shape != scores.shape:
        raise ValueError("live_ids and scores must align")
    n_live = len(live_ids)
    keep_count = int(np.clip(keep_count, 0, n_live))

    protected_mask = np.isin(live_ids, np.asarray(list(protected_ids), dtype=np.int64))
    n_protected = int(protected_mask.sum())
    keep_count = max(keep_count, n_protected)
    if keep_count >= n_live:
        return TokenPruningDecision(
            kept_rows=np.arange(n_live, dtype=np.int64),
            kept_ids=live_ids.copy(),
            pruned_ids=np.zeros(0, dtype=np.int64),
        )

    # Fill the non-protected slots by score.
    free_rows = np.flatnonzero(~protected_mask)
    n_free_slots = keep_count - n_protected
    chosen_free = free_rows[topk_indices(scores[free_rows], n_free_slots)]
    kept_rows = np.sort(np.concatenate([np.flatnonzero(protected_mask), chosen_free]))
    kept_mask = np.zeros(n_live, dtype=bool)
    kept_mask[kept_rows] = True
    return TokenPruningDecision(
        kept_rows=kept_rows.astype(np.int64),
        kept_ids=live_ids[kept_rows],
        pruned_ids=live_ids[~kept_mask],
    )
