"""The SpAtten attention pipeline as an :class:`AttentionExecutor`.

``SpAttenExecutor`` composes everything the paper proposes:

* **cascade token pruning** — entry pruning per layer against the
  schedule, driven by cumulative token importance (Algorithm 2); pruned
  tokens leave the residual stream (saving FFN work) and are evicted
  from every layer's KV cache (saving DRAM traffic in generation);
* **cascade head pruning** — a global live-head set shrinking across
  layers, driven by cumulative output magnitudes;
* **local value pruning** — per-head, per-layer V-vector skipping from
  the current attention probabilities (Section III-C);
* **progressive quantization** — MSB-only attention first, per-row LSB
  refetch when the probability distribution is flat (Section III-D).

The executor emits an :class:`~repro.core.trace.AttentionTrace` whose
count fields are guaranteed (and tested) to match the analytic
:func:`~repro.core.trace.spatten_trace`, because both call the same
schedule functions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..config import ModelConfig, PruningConfig, QuantConfig
from ..nn.attention import AttentionRecord, expand_pruned_heads, merge_heads
from ..nn.functional import softmax
from ..nn.kv_cache import KVCache
from ..nn.numerics import resolve_numerics
from ..nn.transformer import AttentionExecutor, LayerExecution, TransformerModel
from . import schedule as sched
from .head_pruning import prune_heads
from .importance import HeadImportanceAccumulator, TokenImportanceAccumulator
from .quantization import LinearQuantizer, needs_lsb
from .token_pruning import prune_tokens
from .trace import AttentionTrace, LayerStep
from .value_pruning import apply_local_value_pruning, local_value_keep_indices

__all__ = ["SpAttenExecutor"]


class SpAttenExecutor(AttentionExecutor):
    """Attention executor implementing the full SpAtten algorithm stack.

    Args:
        pruning: cascade/local pruning schedule.  The default
            (:class:`PruningConfig` with all keeps at 1.0) disables
            pruning, which makes the executor a quantization-only or
            pure-reference path.
        quant: progressive-quantization settings, or ``None`` for fp
            numerics.
        kv_page_tokens: KV-cache growth quantum in columns; the serving
            engine passes its memory pool's page size so buffer growth
            and pool-page accounting share one unit.
        numerics: :class:`~repro.nn.numerics.NumericsPolicy` (or tier
            name) governing KV storage dtype and DRAM accounting.  The
            SpAtten attention core itself keeps its own per-sequence
            semantics — progressive quantization is configured through
            ``quant`` — but the cache underneath stores at the policy's
            dtype so a mixed fleet shares one storage contract.
    """

    def __init__(
        self,
        pruning: Optional[PruningConfig] = None,
        quant: Optional[QuantConfig] = None,
        kv_page_tokens: int = 16,
        numerics=None,
    ):
        self.pruning = pruning or PruningConfig()
        self.quant = quant
        self._kv_page_tokens = kv_page_tokens
        self._numerics = resolve_numerics(numerics)
        # Per-sequence state (populated by begin_sequence).
        self._model_config: Optional[ModelConfig] = None
        self.token_acc: Optional[TokenImportanceAccumulator] = None
        self.head_acc: Optional[HeadImportanceAccumulator] = None
        self.trace: Optional[AttentionTrace] = None
        self._cache: Optional[KVCache] = None
        self._alive_tokens: Optional[np.ndarray] = None
        self._alive_heads: Optional[np.ndarray] = None
        self._token_counts: Optional[np.ndarray] = None
        self._token_fracs: Optional[np.ndarray] = None
        self._head_counts: Optional[np.ndarray] = None
        self._original_length: Optional[int] = None
        self._total_length = 0

    # ------------------------------------------------------------------
    # Sequence lifecycle
    # ------------------------------------------------------------------
    def begin_sequence(self, model: TransformerModel) -> None:
        cfg = model.config
        self._model_config = cfg
        self.token_acc = TokenImportanceAccumulator()
        self.head_acc = HeadImportanceAccumulator(cfg.n_heads)
        self._alive_heads = np.arange(cfg.n_heads, dtype=np.int64)
        self._alive_tokens = None
        policy = self._numerics
        self._cache = (
            KVCache(
                cfg.n_layers, cfg.n_heads, cfg.head_dim,
                bytes_per_element=policy.storage_bytes_per_element(
                    cfg.bytes_per_element
                ),
                page_tokens=self._kv_page_tokens,
                dtype=policy.kv_dtype,
            )
            if cfg.causal
            else None
        )
        self.trace = None
        self._token_counts = None
        self._token_fracs = None
        self._head_counts = None
        self._original_length = None
        self._total_length = 0

    def _init_schedules(self, sentence_length: int) -> None:
        cfg = self._model_config
        self._original_length = sentence_length
        self._total_length = sentence_length
        self._token_counts = sched.token_keep_counts(
            self.pruning, cfg.n_layers, sentence_length
        )
        self._token_fracs = sched.token_keep_fractions(
            self.pruning, cfg.n_layers, sentence_length
        )
        self._head_counts = sched.head_keep_counts(
            self.pruning, cfg.n_layers, cfg.n_heads
        )
        self.trace = AttentionTrace(
            cfg, sentence_length, 0, quant=self.quant, pruning=self.pruning
        )

    @property
    def supports_incremental_prefill(self) -> bool:
        """Cascade pruning decides over the whole sentence at once.

        Entry token pruning at layer ``l`` ranks *every* prompt token's
        accumulated importance, so summarization cannot commit a prefix
        chunk without changing the pruning decisions.  Chunked serving
        therefore defers SpAtten summarization to the final chunk
        (:meth:`repro.nn.transformer.TransformerModel.
        prefill_chunk_batch`), keeping results bit-identical to the
        monolithic pass.
        """
        return False

    # ------------------------------------------------------------------
    # Serving introspection (KV bookkeeping for the memory pool)
    # ------------------------------------------------------------------
    def kv_lengths(self) -> List[int]:
        """Per-layer live KV column counts after cascade eviction."""
        return self._cache.lengths() if self._cache is not None else []

    @property
    def n_live_heads(self) -> int:
        """Heads surviving cascade head pruning so far."""
        return len(self._alive_heads) if self._alive_heads is not None else 0

    @property
    def evicted_kv_tokens(self) -> int:
        """Cumulative KV columns evicted by cascade token pruning."""
        return self._cache.total_evicted_tokens if self._cache is not None else 0

    @property
    def kv_nbytes(self) -> int:
        """Live KV-cache footprint in storage bytes (dtype-aware)."""
        return self._cache.nbytes if self._cache is not None else 0

    # ------------------------------------------------------------------
    # Quantized / progressive attention probabilities
    # ------------------------------------------------------------------
    def _attention_probs(
        self,
        q: np.ndarray,
        k: np.ndarray,
        mask: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, float]:
        """Probabilities under the configured quantization.

        Returns ``(probs [h, L0, L1], lsb_fraction)`` where
        ``lsb_fraction`` is the fraction of softmax rows that required
        the LSB refetch (0.0 without progressive quantization).
        """
        head_dim = q.shape[-1]

        def scores_of(qq: np.ndarray, kk: np.ndarray) -> np.ndarray:
            s = qq @ kk.transpose(0, 2, 1) / np.sqrt(head_dim)
            if mask is not None:
                s = np.where(mask[None, :, :], s, -1e30)
            return s

        if self.quant is None:
            return softmax(scores_of(q, k), axis=-1), 0.0

        quantizer = LinearQuantizer(self.quant.msb_bits, self.quant.lsb_bits)
        q_q, k_q = quantizer.quantize(q), quantizer.quantize(k)
        q_msb = quantizer.dequantize_msb(q_q)
        k_msb = quantizer.dequantize_msb(k_q)
        probs_msb = softmax(scores_of(q_msb, k_msb), axis=-1)
        if not self.quant.progressive:
            # Static quantization (the paper's BERT setting): a single
            # MSB-width fetch, never refined.
            return probs_msb, 0.0

        refetch = needs_lsb(probs_msb, self.quant.threshold)  # [h, L0]
        if not refetch.any():
            return probs_msb, 0.0
        q_full = quantizer.dequantize_full(q_q)
        k_full = quantizer.dequantize_full(k_q)
        probs_full = softmax(scores_of(q_full, k_full), axis=-1)
        probs = np.where(refetch[:, :, None], probs_full, probs_msb)
        return probs, float(refetch.mean())

    def _quantize_values(self, v: np.ndarray) -> np.ndarray:
        """Round-trip V through the configured storage width."""
        if self.quant is None:
            return v
        if self.quant.progressive:
            bits = LinearQuantizer(self.quant.msb_bits, self.quant.lsb_bits)
        else:
            bits = LinearQuantizer(self.quant.msb_bits, 0)
        return bits.dequantize_full(bits.quantize(v))

    # ------------------------------------------------------------------
    # Layer execution
    # ------------------------------------------------------------------
    def run_layer(
        self,
        layer_idx: int,
        model: TransformerModel,
        x: np.ndarray,
        positions: np.ndarray,
        stage: str,
        projected=None,
    ) -> LayerExecution:
        if projected is not None:
            raise ValueError(
                "SpAttenExecutor projects live heads itself; precomputed "
                "projections are only consumed via decode_attend_packed"
            )
        if stage == "summarize":
            return self._run_summarize(layer_idx, model, x, positions)
        if stage == "decode":
            return self._run_decode(layer_idx, model, x, positions)
        raise ValueError(f"unknown stage {stage!r}")

    def _prune_heads_at(self, layer_idx: int) -> None:
        target = int(self._head_counts[layer_idx])
        if target < len(self._alive_heads):
            decision = prune_heads(
                self._alive_heads,
                self.head_acc.scores_for(self._alive_heads),
                target,
            )
            self._alive_heads = decision.kept_ids

    def _project_live(
        self, model: TransformerModel, layer_idx: int, x_live: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Q/K/V of the live heads only (``[h_live, L, D]`` each)."""
        attn = model.attention(layer_idx)
        q = attn.project_q(x_live)[self._alive_heads]
        k, v = attn.project_kv(x_live)
        return q, k[self._alive_heads], v[self._alive_heads]

    def _finish_layer(
        self,
        model: TransformerModel,
        layer_idx: int,
        probs: np.ndarray,
        v_live: np.ndarray,
        key_ids: np.ndarray,
        query_ids: np.ndarray,
        lsb_fraction: float,
        stage: str,
    ) -> Tuple[np.ndarray, AttentionRecord]:
        """Local V pruning, importance accumulation, output projection."""
        merged, record = self._finish_layer_merged(
            model, layer_idx, probs, v_live, key_ids, query_ids,
            lsb_fraction, stage,
        )
        output = model.attention(layer_idx).project_merged(merged)
        return output, record

    def _finish_layer_merged(
        self,
        model: TransformerModel,
        layer_idx: int,
        probs: np.ndarray,
        v_live: np.ndarray,
        key_ids: np.ndarray,
        query_ids: np.ndarray,
        lsb_fraction: float,
        stage: str,
    ) -> Tuple[np.ndarray, AttentionRecord]:
        """Everything in :meth:`_finish_layer` except the output FC.

        Returns the merged full-width head features ``[L, h*D]`` so the
        packed decode backend can batch the output projection across
        sequences (:mod:`repro.nn.batched_attention`); the looped path
        applies the same FC per sequence, which is bit-identical.
        """
        kept_per_head = local_value_keep_indices(probs, self.pruning.value_keep)
        head_out, kept_counts = apply_local_value_pruning(
            probs, v_live, kept_per_head
        )
        self.token_acc.accumulate(probs, key_ids)
        self.head_acc.accumulate(head_out, self._alive_heads)

        cfg = self._model_config
        full = expand_pruned_heads(head_out, self._alive_heads, cfg.n_heads)
        merged = merge_heads(full)
        record = AttentionRecord(
            probs=probs,
            head_outputs=head_out,
            key_token_ids=key_ids.copy(),
            query_token_ids=query_ids.copy(),
            head_ids=self._alive_heads.copy(),
            value_kept=kept_counts,
            lsb_refetched=lsb_fraction > 0.0,
        )
        self.trace.add(
            LayerStep(
                layer=layer_idx,
                stage=stage,
                n_queries=len(query_ids),
                n_keys=len(key_ids),
                n_heads=len(self._alive_heads),
                n_values=int(kept_counts[0]) if len(kept_counts) else 0,
                lsb_fraction=lsb_fraction,
            )
        )
        return merged, record

    def _run_summarize(
        self,
        layer_idx: int,
        model: TransformerModel,
        x: np.ndarray,
        positions: np.ndarray,
    ) -> LayerExecution:
        cfg = self._model_config
        if layer_idx == 0:
            self._init_schedules(len(x))
            self._alive_tokens = positions.copy()

        # --- cascade token pruning (entry, schedule-driven) -----------
        target = int(self._token_counts[layer_idx])
        protected = (
            [self._original_length - 1] if cfg.causal else [0]
        )
        decision = prune_tokens(
            positions, self.token_acc.scores_for(positions), target, protected
        )
        kept_rows = decision.kept_rows
        x_live = x[kept_rows]
        live_positions = positions[kept_rows]
        self._alive_tokens = decision.kept_ids

        # --- cascade head pruning (entry) ------------------------------
        self._prune_heads_at(layer_idx)

        q_live, k_live, v_live = self._project_live(model, layer_idx, x_live)

        if cfg.causal:
            layer_cache = self._cache[layer_idx]
            # Summarization visits each layer once, so the cache is empty
            # here; appending keeps decode and summarize on one code path.
            k_full = np.zeros((cfg.n_heads, len(x_live), cfg.head_dim))
            v_full = np.zeros_like(k_full)
            k_full[self._alive_heads] = k_live
            v_full[self._alive_heads] = v_live
            layer_cache.append(k_full, v_full, live_positions)
            key_ids = layer_cache.token_ids
            mask = key_ids[None, :] <= live_positions[:, None]
        else:
            key_ids = live_positions
            mask = None

        probs, lsb_fraction = self._attention_probs(q_live, k_live, mask)
        v_used = self._quantize_values(v_live)
        output, record = self._finish_layer(
            model, layer_idx, probs, v_used, key_ids, live_positions,
            lsb_fraction, "summarize",
        )
        return LayerExecution(output, record, kept_rows)

    def _decode_control(self, layer_idx: int, positions: np.ndarray) -> None:
        """Pre-projection decode control: pruning decisions + eviction.

        Everything in a decode layer that precedes the Q/K/V projection:
        admitting the new token to the live set (layer 0), cascade token
        pruning over the global live set, cascade head pruning, and
        evicting pruned columns from this layer's KV cache.  Shared
        verbatim by the looped and packed decode paths, so both commit
        exactly the same pruning decisions.
        """
        if self._original_length is None:
            raise RuntimeError("decode before summarize; call encode/generate")

        if layer_idx == 0:
            # A new token enters the live set.
            self._total_length += 1
            self.trace.n_generated += 1
            self._alive_tokens = np.append(self._alive_tokens, positions)

        # --- cascade token pruning over the global live set -----------
        target = sched.decode_token_target(
            self.pruning, float(self._token_fracs[layer_idx]), self._total_length
        )
        if target < len(self._alive_tokens):
            decision = prune_tokens(
                self._alive_tokens,
                self.token_acc.scores_for(self._alive_tokens),
                target,
                protected_ids=[int(positions[0])],
            )
            self._alive_tokens = decision.kept_ids

        self._prune_heads_at(layer_idx)

        # --- evict pruned tokens from this layer's KV cache ------------
        layer_cache = self._cache[layer_idx]
        keep_cols = np.flatnonzero(
            np.isin(layer_cache.token_ids, self._alive_tokens)
        )
        if len(keep_cols) < len(layer_cache):
            layer_cache.keep(keep_cols)

    def _decode_attend_merged(
        self,
        layer_idx: int,
        model: TransformerModel,
        q_live: np.ndarray,
        k_live: np.ndarray,
        v_live: np.ndarray,
        positions: np.ndarray,
    ) -> Tuple[np.ndarray, AttentionRecord]:
        """Post-projection decode core; returns merged ``[1, h*D]``.

        Appends the (full-width, dead-head-zeroed) K/V column, runs the
        quantization-aware attention probabilities over the live heads,
        and finishes with local value pruning and importance
        accumulation — everything except the output FC.
        """
        cfg = self._model_config
        layer_cache = self._cache[layer_idx]
        k_full = np.zeros((cfg.n_heads, 1, cfg.head_dim))
        v_full = np.zeros_like(k_full)
        k_full[self._alive_heads] = k_live
        v_full[self._alive_heads] = v_live
        layer_cache.append(k_full, v_full, positions)

        key_ids = layer_cache.token_ids
        k_use = layer_cache.keys[self._alive_heads]
        v_use = layer_cache.values[self._alive_heads]
        probs, lsb_fraction = self._attention_probs(q_live, k_use, mask=None)
        v_used = self._quantize_values(v_use)
        return self._finish_layer_merged(
            model, layer_idx, probs, v_used, key_ids, positions,
            lsb_fraction, "decode",
        )

    def _run_decode(
        self,
        layer_idx: int,
        model: TransformerModel,
        x: np.ndarray,
        positions: np.ndarray,
    ) -> LayerExecution:
        if len(x) != 1:
            raise ValueError("decode processes exactly one token")
        self._decode_control(layer_idx, positions)
        q_live, k_live, v_live = self._project_live(model, layer_idx, x)
        merged, record = self._decode_attend_merged(
            layer_idx, model, q_live, k_live, v_live, positions
        )
        output = model.attention(layer_idx).project_merged(merged)
        return LayerExecution(output, record, np.arange(1))

    # ------------------------------------------------------------------
    # Packed decode protocol (repro.nn.batched_attention)
    # ------------------------------------------------------------------
    @property
    def numerics(self):
        """The numerics ladder tier this executor stores KV state at."""
        return self._numerics

    @property
    def packed_decode_style(self) -> str:
        """The backend supplies projections; SpAtten runs its own core.

        Cascade pruning decisions, per-sequence surviving-head gathers,
        progressive quantization (whose scales are data-dependent), and
        trace accounting are inherently per-sequence, so only the
        projections and the output FC are batched for this executor.
        """
        return "custom" if self._cache is not None else "none"

    def decode_attend_packed(
        self,
        layer_idx: int,
        model: TransformerModel,
        q_full: np.ndarray,
        k_full: np.ndarray,
        v_full: np.ndarray,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Per-sequence decode core on backend-projected full-width rows.

        Gathers the surviving-head slices from the full-width
        projections — bit-identical to :meth:`_project_live`'s
        project-then-gather, since per-head projections are independent
        output columns — and runs exactly the looped control + attend
        path, returning the merged pre-projection features ``[1, h*D]``.
        """
        self._decode_control(layer_idx, positions)
        q_live = q_full[self._alive_heads]
        k_live = k_full[self._alive_heads]
        v_live = v_full[self._alive_heads]
        merged, _ = self._decode_attend_merged(
            layer_idx, model, q_live, k_live, v_live, positions
        )
        return merged
