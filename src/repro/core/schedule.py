"""Per-layer pruning schedules (paper Section V-A).

The paper's recipe: keep the front 15% of layers un-pruned for tokens
(30% for heads), then interpolate per-layer ratios linearly from a start
to an end value; longer sentences tolerate more pruning, so ratios are
additionally scaled by sentence length.

Schedules here are expressed as *keep fractions relative to the original
sentence length* — Fig. 1 reports surviving tokens per layer in exactly
those terms (11 -> 6 tokens, 12 -> 10 -> 8 heads).  Both the
:class:`~repro.core.pipeline.SpAttenExecutor` (data-driven run) and the
analytic trace builder (:mod:`repro.core.trace`) call the *same* count
functions below, which is what lets the reproduction validate that the
analytic performance model matches the executed model exactly.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import PruningConfig

__all__ = [
    "effective_token_keep",
    "token_keep_fractions",
    "token_keep_counts",
    "head_keep_fractions",
    "head_keep_counts",
    "decode_token_target",
]


def effective_token_keep(pruning: PruningConfig, sentence_length: int) -> float:
    """Final-layer token keep fraction, adjusted for sentence length.

    With ``length_adaptive`` on, longer sentences are pruned harder
    (Section III-A: "Since long sentences are naturally more redundant,
    we also adjust the pruning ratios based on sentence length").  The
    adjustment scales the *pruned* mass by ``sqrt(L / reference)``:
    at the reference length the configured keep applies exactly; a 4x
    longer sentence prunes twice as much of its prunable mass, a 4x
    shorter one half.
    """
    keep = pruning.token_keep_final
    if not pruning.length_adaptive or sentence_length <= 0:
        return keep
    scale = math.sqrt(sentence_length / pruning.reference_length)
    if scale >= 1.0:
        # Longer than reference: shrink the keep fraction toward the floor.
        keep = keep / scale
    else:
        # Shorter: prune proportionally less of the prunable mass.
        keep = 1.0 - (1.0 - keep) * scale
    floor = min(1.0, pruning.min_tokens / max(sentence_length, 1))
    return float(np.clip(keep, floor, 1.0))


def _interpolated_fractions(
    n_layers: int, front_frac: float, final_keep: float
) -> np.ndarray:
    """Linear keep-fraction ramp: 1.0 on front layers, down to final_keep."""
    fractions = np.ones(n_layers, dtype=np.float64)
    if final_keep >= 1.0 or n_layers == 0:
        return fractions
    n_front = min(n_layers - 1, max(0, math.ceil(front_frac * n_layers)))
    n_ramp = n_layers - n_front
    for offset in range(n_ramp):
        t = (offset + 1) / n_ramp
        fractions[n_front + offset] = 1.0 + (final_keep - 1.0) * t
    return fractions


def token_keep_fractions(
    pruning: PruningConfig, n_layers: int, sentence_length: int
) -> np.ndarray:
    """Per-layer token keep fractions (relative to original length)."""
    final_keep = effective_token_keep(pruning, sentence_length)
    return _interpolated_fractions(n_layers, pruning.token_front_frac, final_keep)


def token_keep_counts(
    pruning: PruningConfig, n_layers: int, sentence_length: int
) -> np.ndarray:
    """Per-layer surviving token counts for the summarization stage.

    Counts are rounded, floored at ``min_tokens`` (never below 1), and
    made non-increasing (cascade: the live set can only shrink).
    """
    fractions = token_keep_fractions(pruning, n_layers, sentence_length)
    floor = min(sentence_length, max(1, pruning.min_tokens))
    counts = np.maximum(
        np.rint(fractions * sentence_length).astype(np.int64), floor
    )
    counts = np.minimum.accumulate(counts)
    return counts


def head_keep_fractions(pruning: PruningConfig, n_layers: int) -> np.ndarray:
    """Per-layer head keep fractions."""
    return _interpolated_fractions(
        n_layers, pruning.head_front_frac, pruning.head_keep_final
    )


def head_keep_counts(
    pruning: PruningConfig, n_layers: int, n_heads: int
) -> np.ndarray:
    """Per-layer surviving head counts (floored at one head)."""
    fractions = head_keep_fractions(pruning, n_layers)
    counts = np.maximum(np.rint(fractions * n_heads).astype(np.int64), 1)
    counts = np.minimum.accumulate(counts)
    return counts


def decode_token_target(
    pruning: PruningConfig,
    layer_keep_fraction: float,
    total_length: int,
) -> int:
    """Token keep target at a decode step (generation stage).

    The live-set budget tracks the *current* total sequence length
    (prompt + generated so far): at layer ``l`` the target is
    ``keep_fraction[l] * total_length``, so roughly one old token is
    pruned for every new token generated once the budget is tight —
    keeping the KV-cache traffic proportional to the keep fraction.
    """
    floor = min(total_length, max(1, pruning.min_tokens))
    return max(int(round(layer_keep_fraction * total_length)), floor)
