"""Cascade head pruning decisions (paper Section III-B, Algorithm 2).

Heads are ranked by cumulative output magnitude; once a head is pruned it
never appears in any following layer.  The same top-k selection machinery
as token pruning is used (the hardware reuses the token-pruning top-k
engine for heads, Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .topk import topk_indices

__all__ = ["HeadPruningDecision", "prune_heads"]


@dataclass
class HeadPruningDecision:
    """Outcome of one head-pruning round.

    ``kept_rows`` index into the live-head array; ``kept_ids`` are the
    original head indices that survive.
    """

    kept_rows: np.ndarray
    kept_ids: np.ndarray
    pruned_ids: np.ndarray

    @property
    def n_kept(self) -> int:
        return len(self.kept_rows)


def prune_heads(
    live_head_ids: np.ndarray,
    scores: np.ndarray,
    keep_count: int,
) -> HeadPruningDecision:
    """Select the ``keep_count`` most important live heads (min 1)."""
    live_head_ids = np.asarray(live_head_ids, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if live_head_ids.shape != scores.shape:
        raise ValueError("live_head_ids and scores must align")
    n_live = len(live_head_ids)
    keep_count = int(np.clip(keep_count, 1, n_live))
    if keep_count >= n_live:
        return HeadPruningDecision(
            kept_rows=np.arange(n_live, dtype=np.int64),
            kept_ids=live_head_ids.copy(),
            pruned_ids=np.zeros(0, dtype=np.int64),
        )
    kept_rows = topk_indices(scores, keep_count)
    kept_mask = np.zeros(n_live, dtype=bool)
    kept_mask[kept_rows] = True
    return HeadPruningDecision(
        kept_rows=kept_rows,
        kept_ids=live_head_ids[kept_rows],
        pruned_ids=live_head_ids[~kept_mask],
    )
