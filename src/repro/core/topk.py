"""Top-k selection algorithms (paper Section IV-B, Algorithm 3).

Cascade pruning needs, at every layer, the ``k`` most important tokens or
heads out of the live set.  The paper's hardware uses a quick-select
engine (average O(n)) rather than a full sort (O(n log n)); this module
implements the *functional* algorithms that the rest of the library uses:

* :func:`topk_indices` — order-preserving top-k, the semantic ground
  truth everything is tested against (the hardware engine "keeps the
  original order of inputs").
* :func:`quick_select_kth` — the paper's Algorithm 3 as a pure function,
  returning the k-th largest value and the tie budget, along with the
  per-round partition sizes that drive the cycle model in
  :mod:`repro.hardware.topk_engine`.
* :func:`filter_topk` — the post-quick-select filtering step: keep
  elements strictly greater than the threshold plus exactly
  ``num_eq_k_th_largest`` elements equal to it, preserving input order.

The cycle-accurate engine (comparator arrays, zero eliminators, FIFO
occupancy) lives in the hardware package; the functions here are the
specification it must match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "topk_indices",
    "quick_select_kth",
    "filter_topk",
    "QuickSelectStats",
]


def topk_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, in original (ascending) order.

    Ties are broken toward earlier indices, matching the hardware
    behaviour of keeping the first ``num_eq_k_th_largest`` ties in stream
    order.  ``k`` is clipped to ``[0, len(scores)]``.
    """
    scores = np.asarray(scores)
    n = len(scores)
    k = int(min(max(k, 0), n))
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    if k == n:
        return np.arange(n, dtype=np.int64)
    # Stable selection: sort by (-score, index) and take the first k.
    order = np.lexsort((np.arange(n), -scores))
    return np.sort(order[:k]).astype(np.int64)


@dataclass
class QuickSelectStats:
    """Work profile of one quick-select run (drives the cycle model).

    ``partition_sizes`` lists the number of elements pushed through the
    comparator arrays at each STATE_RUN iteration; total comparator work
    is their sum, and with parallelism ``P`` each round costs roughly
    ``ceil(size / P)`` cycles (plus pipeline constants).
    """

    partition_sizes: List[int]
    pivots: List[float]

    @property
    def n_rounds(self) -> int:
        return len(self.partition_sizes)

    @property
    def total_elements_processed(self) -> int:
        return int(sum(self.partition_sizes))


def quick_select_kth(
    values: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, int, QuickSelectStats]:
    """Find the k-th largest value via the paper's Algorithm 3.

    The loop mirrors the hardware state machine: a pivot is drawn from
    the FIFO being drained, the comparator arrays partition its contents
    into FIFO_L (``< pivot``) and FIFO_R (``> pivot``) while counting
    ties, and the START logic decides which FIFO to refine next.

    Args:
        values: input array (any real values, length >= 1).
        k: rank, 1-based (``k=1`` is the maximum), ``1 <= k <= len``.
        rng: pivot-selection randomness (deterministic default).

    Returns:
        ``(k_th_largest, num_eq_k_th_largest, stats)`` where
        ``num_eq_k_th_largest`` is how many elements equal to the
        threshold must be kept so that exactly ``k`` elements survive
        filtering (the paper's tie-handling output).
    """
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    if n == 0:
        raise ValueError("quick_select_kth requires a non-empty array")
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for {n} elements")
    if rng is None:
        rng = np.random.default_rng(0)

    stats = QuickSelectStats(partition_sizes=[], pivots=[])
    source = values  # contents of the FIFO currently being drained
    target = k  # how many of the largest elements remain to be located
    while True:
        pivot = float(source[int(rng.integers(len(source)))])
        stats.pivots.append(pivot)
        stats.partition_sizes.append(int(len(source)))
        smaller = source[source < pivot]  # -> FIFO_L
        larger = source[source > pivot]  # -> FIFO_R
        num_eq_pivot = int(len(source) - len(smaller) - len(larger))
        if len(larger) > target:
            # Pivot too small: the k-th largest is among the larger ones.
            source = larger
        elif len(larger) + num_eq_pivot >= target:
            # larger <= target <= larger + ties: the pivot itself is the
            # k-th largest; keep (target - larger) of its ties.
            return pivot, target - len(larger), stats
        else:
            # Pivot too large: everything >= pivot is accounted for; the
            # k-th largest is among the smaller elements.
            target -= len(larger) + num_eq_pivot
            source = smaller


def filter_topk(
    values: np.ndarray, threshold: float, num_eq_keep: int
) -> np.ndarray:
    """Order-preserving filter after quick-select.

    Keeps every element strictly greater than ``threshold`` and the first
    ``num_eq_keep`` elements equal to it (stream order), mirroring the
    zero-eliminator filtering stage of the hardware engine.

    Returns the kept indices in ascending order.
    """
    values = np.asarray(values)
    above = values > threshold
    equal = values == threshold
    eq_positions = np.flatnonzero(equal)[: max(int(num_eq_keep), 0)]
    kept = np.flatnonzero(above)
    return np.sort(np.concatenate([kept, eq_positions])).astype(np.int64)
