"""Workload traces: the interface between algorithms and cost models.

A trace records, for every attention execution (one per layer in the
summarization stage, one per layer per generated token in the generation
stage), the *post-pruning* work shape: live queries, keys, heads, kept
value vectors, and the fraction of softmax rows that triggered an LSB
refetch.  Everything downstream — FLOPs accounting, DRAM-traffic
accounting, the cycle-level accelerator simulator, and the platform
baseline models — consumes traces, never models directly.

Two ways to obtain a trace:

* measured — :class:`~repro.core.pipeline.SpAttenExecutor` emits one as
  it runs a real model;
* analytic — :func:`spatten_trace` replays the *same* schedule functions
  (:mod:`repro.core.schedule`) at count level, without touching weights.

Unit tests assert the two agree exactly on every count field, which is
what licenses using cheap analytic traces for the paper-scale
experiments (BERT-Large, GPT-2-Medium with 992-token prompts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import ModelConfig, PruningConfig, QuantConfig
from . import schedule as sched

__all__ = ["LayerStep", "AttentionTrace", "dense_trace", "spatten_trace"]

#: Fraction of softmax rows needing the LSB refetch, averaged across the
#: paper's benchmarks ("on average, only 5.9% input samples require LSB",
#: Section III-D).  Used by analytic traces; measured runs report the
#: actual fraction.
DEFAULT_LSB_FRACTION = 0.059


@dataclass
class LayerStep:
    """Work shape of one attention execution.

    Attributes:
        layer: block index.
        stage: ``"summarize"`` or ``"decode"``.
        n_queries: live query rows (== rows later processed by the FFN).
        n_keys: live key/value columns in the Q x K computation.
        n_heads: live heads.
        n_values: kept V vectors per head after local value pruning.
        lsb_fraction: fraction of softmax rows that refetched LSBs
            (0.0 when progressive quantization is off).
    """

    layer: int
    stage: str
    n_queries: int
    n_keys: int
    n_heads: int
    n_values: int
    lsb_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.stage not in ("summarize", "decode"):
            raise ValueError(f"unknown stage {self.stage!r}")
        if min(self.n_queries, self.n_keys, self.n_heads, self.n_values) < 0:
            raise ValueError("step counts must be non-negative")
        if self.n_values > self.n_keys:
            raise ValueError("cannot keep more values than keys")


@dataclass
class AttentionTrace:
    """A full run's worth of :class:`LayerStep` entries plus metadata."""

    model: ModelConfig
    original_length: int
    n_generated: int
    steps: List[LayerStep] = field(default_factory=list)
    quant: Optional[QuantConfig] = None
    pruning: Optional[PruningConfig] = None

    def add(self, step: LayerStep) -> None:
        self.steps.append(step)

    @property
    def summarize_steps(self) -> List[LayerStep]:
        return [s for s in self.steps if s.stage == "summarize"]

    @property
    def decode_steps(self) -> List[LayerStep]:
        return [s for s in self.steps if s.stage == "decode"]

    def count_signature(self) -> List[tuple]:
        """Hashable per-step count tuples (for analytic-vs-measured tests)."""
        return [
            (s.layer, s.stage, s.n_queries, s.n_keys, s.n_heads, s.n_values)
            for s in self.steps
        ]

    @property
    def mean_lsb_fraction(self) -> float:
        """Row-weighted mean LSB-refetch fraction across all steps."""
        rows = sum(s.n_queries * s.n_heads for s in self.steps)
        if rows == 0:
            return 0.0
        weighted = sum(
            s.lsb_fraction * s.n_queries * s.n_heads for s in self.steps
        )
        return weighted / rows

    # ------------------------------------------------------------------
    # KV-cache memory accounting (dtype-aware, matching KVCache.nbytes)
    # ------------------------------------------------------------------
    def kv_bytes_of_step(self, step: LayerStep) -> int:
        """Live KV bytes held during one step: K and V columns of the
        surviving keys across the live heads, at the model's storage
        width (``ModelConfig.bytes_per_element``, fp16 baseline)."""
        per_head = self.model.kv_bytes_per_token // self.model.n_heads
        return per_head * step.n_keys * step.n_heads

    @property
    def kv_bytes_per_step(self) -> List[int]:
        """Per-step live KV footprints in bytes."""
        return [self.kv_bytes_of_step(s) for s in self.steps]

    @property
    def peak_kv_bytes(self) -> int:
        """Largest per-step live KV footprint."""
        return max(self.kv_bytes_per_step, default=0)

    @property
    def cumulative_kv_bytes(self) -> int:
        """KV bytes summed over every attention execution — the trace-level
        proxy for KV DRAM traffic that cascade pruning reduces.  The
        serving memory pool sizes its pages with the same per-token byte
        arithmetic (:attr:`~repro.config.ModelConfig.kv_bytes_per_token`,
        matching :attr:`~repro.nn.kv_cache.KVCache.nbytes`)."""
        return sum(self.kv_bytes_per_step)


def _value_keep_count(pruning: Optional[PruningConfig], n_keys: int) -> int:
    if pruning is None or pruning.value_keep >= 1.0:
        return n_keys
    return max(int(math.ceil(pruning.value_keep * n_keys)), min(1, n_keys))


def dense_trace(
    model: ModelConfig, seq_len: int, n_generate: int = 0
) -> AttentionTrace:
    """Trace of an unpruned, unquantized run (the baseline workload)."""
    if seq_len <= 0:
        raise ValueError("seq_len must be positive")
    if n_generate and not model.causal:
        raise ValueError("only causal models generate")
    trace = AttentionTrace(model, seq_len, n_generate)
    for layer in range(model.n_layers):
        trace.add(
            LayerStep(layer, "summarize", seq_len, seq_len, model.n_heads, seq_len)
        )
    for step_idx in range(n_generate):
        total = seq_len + step_idx + 1
        for layer in range(model.n_layers):
            trace.add(LayerStep(layer, "decode", 1, total, model.n_heads, total))
    return trace


def spatten_trace(
    model: ModelConfig,
    pruning: PruningConfig,
    quant: Optional[QuantConfig],
    seq_len: int,
    n_generate: int = 0,
    lsb_fraction: float = DEFAULT_LSB_FRACTION,
) -> AttentionTrace:
    """Analytic SpAtten trace: schedule-driven counts, no model execution.

    Replays exactly the decisions of
    :class:`~repro.core.pipeline.SpAttenExecutor`: entry pruning per layer
    against the token/head schedules during summarization, and
    total-length-proportional targets during generation.
    """
    if seq_len <= 0:
        raise ValueError("seq_len must be positive")
    if n_generate and not model.causal:
        raise ValueError("only causal models generate")
    effective_lsb = 0.0
    if quant is not None and quant.progressive:
        effective_lsb = float(lsb_fraction)

    trace = AttentionTrace(
        model, seq_len, n_generate, quant=quant, pruning=pruning
    )
    token_counts = sched.token_keep_counts(pruning, model.n_layers, seq_len)
    token_fracs = sched.token_keep_fractions(pruning, model.n_layers, seq_len)
    head_counts = sched.head_keep_counts(pruning, model.n_layers, model.n_heads)

    alive = seq_len
    alive_heads = model.n_heads
    for layer in range(model.n_layers):
        alive = min(alive, int(token_counts[layer]))
        alive_heads = min(alive_heads, int(head_counts[layer]))
        trace.add(
            LayerStep(
                layer, "summarize", alive, alive, alive_heads,
                _value_keep_count(pruning, alive), effective_lsb,
            )
        )

    for step_idx in range(n_generate):
        total_length = seq_len + step_idx + 1
        alive += 1  # the newly generated token joins the live set
        for layer in range(model.n_layers):
            target = sched.decode_token_target(
                pruning, float(token_fracs[layer]), total_length
            )
            alive = min(alive, target)
            trace.add(
                LayerStep(
                    layer, "decode", 1, alive, alive_heads,
                    _value_keep_count(pruning, alive), effective_lsb,
                )
            )
    return trace
