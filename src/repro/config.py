"""Shared configuration dataclasses for the SpAtten reproduction.

Everything that describes *what* is being run lives here: transformer
geometry, pruning schedules, and quantization settings.  Hardware
configuration (clock, SRAM sizes, multiplier counts) lives in
:mod:`repro.hardware.arch_config` because it describes the accelerator,
not the workload.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "ModelConfig",
    "PruningConfig",
    "QuantConfig",
    "BERT_BASE",
    "BERT_LARGE",
    "GPT2_SMALL",
    "GPT2_MEDIUM",
    "MODEL_ZOO",
]


@dataclass(frozen=True)
class ModelConfig:
    """Geometry of an attention-based NLP model.

    The four paper models (BERT-Base/Large, GPT-2-Small/Medium) are
    provided as module-level constants; custom geometries (e.g. for the
    HAT co-design search of Fig. 16) can be created directly.

    Attributes:
        name: Human-readable identifier (used in benchmark tables).
        n_layers: Number of transformer blocks.
        n_heads: Attention heads per block.
        d_model: Embedding / hidden dimension (``D_in`` in the paper).
        d_ff: Hidden dimension of the feed-forward network.
        vocab_size: Vocabulary size of the token embedding.
        max_seq_len: Maximum supported context length.
        causal: ``True`` for GPT-style decoders (generation stage exists),
            ``False`` for BERT-style encoders (summarization only).
        bytes_per_element: Storage width of activations/weights in DRAM
            before progressive quantization is applied (fp16 baseline).
    """

    name: str
    n_layers: int
    n_heads: int
    d_model: int
    d_ff: int
    vocab_size: int = 8192
    max_seq_len: int = 1024
    causal: bool = False
    bytes_per_element: int = 2

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model={self.d_model} must be divisible by "
                f"n_heads={self.n_heads}"
            )
        if min(self.n_layers, self.n_heads, self.d_model, self.d_ff) <= 0:
            raise ValueError("model dimensions must be positive")

    @property
    def head_dim(self) -> int:
        """Per-head feature dimension (``D`` in the paper's Algorithm 1)."""
        return self.d_model // self.n_heads

    @property
    def kv_bytes_per_token(self) -> int:
        """Storage bytes of one KV-cache column: K and V across all heads
        at the DRAM width.  The single source of truth shared by
        :class:`~repro.nn.kv_cache.LayerKVCache` accounting, the trace
        KV-byte metrics, and the serving memory pool's page size."""
        return 2 * self.n_heads * self.head_dim * self.bytes_per_element

    def with_overrides(self, **kwargs) -> "ModelConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


# The four evaluation models of the paper (Section V-A).  Vocabulary size is
# a synthetic-corpus parameter, not a fidelity-critical one.
BERT_BASE = ModelConfig("bert-base", 12, 12, 768, 3072, causal=False)
BERT_LARGE = ModelConfig("bert-large", 24, 16, 1024, 4096, causal=False)
GPT2_SMALL = ModelConfig("gpt2-small", 12, 12, 768, 3072, causal=True)
GPT2_MEDIUM = ModelConfig("gpt2-medium", 24, 16, 1024, 4096, causal=True)

MODEL_ZOO = {
    cfg.name: cfg for cfg in (BERT_BASE, BERT_LARGE, GPT2_SMALL, GPT2_MEDIUM)
}


@dataclass(frozen=True)
class PruningConfig:
    """Cascade token/head pruning schedule (paper Section V-A).

    The paper keeps the front 15% of layers un-pruned for tokens (30% for
    heads), then linearly interpolates per-layer keep ratios between a
    start and an end value such that their mean matches the target average
    pruning ratio.  Ratios here are expressed as *keep fractions relative
    to the original sentence length* (Fig. 1 reports surviving tokens per
    layer in exactly those terms).

    Attributes:
        token_keep_final: Fraction of the original tokens still alive at
            the last layer.  ``1.0`` disables token pruning.  A paper
            pruning ratio of ``3.8x`` corresponds to ``1/3.8`` here.
        head_keep_final: Fraction of heads alive at the last layer.
        token_front_frac: Fraction of front layers with no token pruning.
        head_front_frac: Fraction of front layers with no head pruning.
        value_keep: Local value-pruning keep fraction applied inside every
            head after softmax (Section III-C).  ``1.0`` disables it.
        length_adaptive: If ``True``, longer sentences are pruned more
            aggressively (Section III-A: "the longer, the more tokens are
            pruned away").
        reference_length: Sentence length at which ``token_keep_final``
            applies exactly when ``length_adaptive`` is on.
        min_tokens: Never prune below this many surviving tokens.
    """

    token_keep_final: float = 1.0
    head_keep_final: float = 1.0
    token_front_frac: float = 0.15
    head_front_frac: float = 0.30
    value_keep: float = 1.0
    length_adaptive: bool = False
    reference_length: int = 128
    min_tokens: int = 2

    def __post_init__(self) -> None:
        for field_name in ("token_keep_final", "head_keep_final", "value_keep"):
            value = getattr(self, field_name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{field_name}={value} must be in (0, 1]")
        for field_name in ("token_front_frac", "head_front_frac"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name}={value} must be in [0, 1]")

    @property
    def token_prune_ratio(self) -> float:
        """Paper-style reduction factor, e.g. ``3.8`` for 3.8x pruning."""
        return 1.0 / self.token_keep_final

    @property
    def head_prune_ratio(self) -> float:
        return 1.0 / self.head_keep_final

    def with_overrides(self, **kwargs) -> "PruningConfig":
        return dataclasses.replace(self, **kwargs)


#: The five MSB+LSB storage layouts supported by the bitwidth converter
#: (Section III-D: "4+4, 6+4, 8+4, 10+4, and 12+4").
SUPPORTED_BIT_SETTINGS: Tuple[Tuple[int, int], ...] = (
    (4, 4),
    (6, 4),
    (8, 4),
    (10, 4),
    (12, 4),
)


@dataclass(frozen=True)
class QuantConfig:
    """Progressive quantization settings (paper Section III-D).

    Attributes:
        msb_bits: Bits fetched in the first pass (the MSB chunk).
        lsb_bits: Bits fetched in the optional second pass.
        progressive: If ``True``, LSBs are fetched only when the max
            attention probability of a row falls below ``threshold``
            (flat distribution => high quantization error => need more
            bits).  If ``False``, behaves as static ``msb_bits``
            quantization (the BERT setting in the paper).
        threshold: Max-probability threshold; the paper's typical value
            is 0.1.
        onchip_bits: Fixed on-chip datapath width that the bitwidth
            converter normalises everything to (Table I: 12 bits).
    """

    msb_bits: int = 8
    lsb_bits: int = 4
    progressive: bool = True
    threshold: float = 0.1
    onchip_bits: int = 12

    def __post_init__(self) -> None:
        if (self.msb_bits, self.lsb_bits) not in SUPPORTED_BIT_SETTINGS:
            supported = ", ".join(f"{m}+{l}" for m, l in SUPPORTED_BIT_SETTINGS)
            raise ValueError(
                f"unsupported bit setting {self.msb_bits}+{self.lsb_bits}; "
                f"the bitwidth converter supports: {supported}"
            )
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")

    @property
    def full_bits(self) -> int:
        """Total bits when both passes are fetched."""
        return self.msb_bits + self.lsb_bits

    def with_overrides(self, **kwargs) -> "QuantConfig":
        return dataclasses.replace(self, **kwargs)


#: Convenience: quantization disabled (pure fp32 reference).
NO_QUANT: Optional[QuantConfig] = None
