"""Serving throughput: dense vs SpAtten-pruned continuous batching.

At a fixed KV memory-pool budget, cascade token pruning lets the
scheduler reserve (and hold) fewer pages per sequence, so more requests
decode concurrently; each decode step is also arithmetically lighter.
The sweep drives both modes with identical Poisson arrival traces at
several rates and reports simulated-clock throughput, queue waits, and
pool behaviour.

A second sweep quantifies the head-of-line prefill stall: with
monolithic prefill every admission freezes the live decode batch for
the whole prompt duration, inflating time-to-first-token and
inter-token decode-latency tails.  Chunked prefill
(``ServingEngine(prefill_chunk=...)``) batches prompt chunks across
requests and interleaves them with decode inside mixed steps — same
pool budget, bit-identical token streams, strictly better TTFT p95 and
decode-latency p95 under load.
"""

import pytest

from repro.config import GPT2_SMALL, PruningConfig
from repro.eval.reporting import Table
from repro.insight import metric
from repro.serving import KVMemoryPool, ServingEngine
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    make_lm_corpus,
    synthetic_request_trace,
)

PRUNING = PruningConfig(token_keep_final=0.35, head_keep_final=0.75,
                        value_keep=0.9)
POOL_PAGES = 64
PAGE_TOKENS = 16

# Chunked-prefill sweep: long prompts make the monolithic stall visible
# (prefill cost is quadratic in prompt length, decode steps are not).
CHUNK_TOKENS = 32
CHUNK_PROMPT_LEN = 192
CHUNK_POOL_PAGES = 512


@pytest.fixture(scope="module")
def serving_world():
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=6, d_model=128, n_heads=8,
        max_seq_len=256,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=4096, seed=2)
    return config, model, corpus


def pool_budget_bytes(config, pages=POOL_PAGES):
    per_token = 2 * config.n_heads * config.head_dim * config.bytes_per_element
    return pages * PAGE_TOKENS * per_token


def run_mode(config, model, requests, pruning):
    pool = KVMemoryPool(
        config, budget_bytes=pool_budget_bytes(config), page_tokens=PAGE_TOKENS
    )
    engine = ServingEngine(model, pool, pruning=pruning)
    return engine.run(requests)


def sweep(config, model, corpus, rates, n_requests):
    rows = []
    for rate in rates:
        requests = synthetic_request_trace(
            corpus, n_requests=n_requests, rate_per_s=rate, prompt_len=48,
            max_new_tokens=(8, 24), seed=7,
        )
        per_mode = {}
        for mode, pruning in (("dense", None), ("spatten", PRUNING)):
            per_mode[mode] = run_mode(config, model, requests, pruning)
        rows.append((rate, per_mode))
    return rows


def test_serving_throughput(serving_world, benchmark, publish):
    config, model, corpus = serving_world
    rates = [100.0, 400.0, 1600.0]
    rows = benchmark.pedantic(
        sweep, args=(config, model, corpus, rates, 20), rounds=1, iterations=1
    )

    table = Table(
        title="continuous-batching serving, dense vs SpAtten "
              f"(pool: {POOL_PAGES} pages x {PAGE_TOKENS} tokens)",
        headers=["rate (req/s)", "mode", "tok/s", "queue p95 (ms)",
                 "mean batch", "occupancy peak", "pages reclaimed"],
    )
    for rate, per_mode in rows:
        for mode, stats in per_mode.items():
            table.add_row(
                f"{rate:.0f}", mode, f"{stats.throughput_tps:.0f}",
                f"{stats.queue_wait_p95 * 1e3:.1f}",
                f"{stats.mean_batch_size:.2f}",
                f"{stats.occupancy_peak:.0%}", str(stats.reclaimed_pages),
            )
    table.add_note(
        "identical Poisson traces per rate; simulated clock "
        "(repro.serving.stats.CostModel); same pool budget for both modes"
    )
    publish("serving_throughput", table)

    for rate, per_mode in rows:
        dense, spatten = per_mode["dense"], per_mode["spatten"]
        # Every request fully served in both modes.
        assert dense.n_tokens == spatten.n_tokens > 0
        # Pruned serving packs more sequences into the same budget...
        assert spatten.mean_batch_size >= dense.mean_batch_size
        # ...and never does worse on throughput.
        assert spatten.throughput_tps >= dense.throughput_tps
    # Under saturating load the pruned path is strictly faster.
    for rate, per_mode in rows[1:]:
        assert (
            per_mode["spatten"].throughput_tps
            > per_mode["dense"].throughput_tps
        ), f"no pruned speedup at rate {rate}"


@pytest.fixture(scope="module")
def long_prompt_world():
    """A longer-context model for the chunked-prefill TTFT sweep."""
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=6, d_model=128, n_heads=8,
        max_seq_len=384,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=8192, seed=2)
    return config, model, corpus


def run_chunk_mode(config, model, requests, pruning, prefill_chunk):
    pool = KVMemoryPool(
        config,
        budget_bytes=pool_budget_bytes(config, pages=CHUNK_POOL_PAGES),
        page_tokens=PAGE_TOKENS,
    )
    engine = ServingEngine(
        model, pool, pruning=pruning, prefill_chunk=prefill_chunk
    )
    return engine.run(requests)


def chunked_prefill_sweep(config, model, corpus, rates, n_requests):
    rows = []
    for rate in rates:
        requests = synthetic_request_trace(
            corpus, n_requests=n_requests, rate_per_s=rate,
            prompt_len=CHUNK_PROMPT_LEN, max_new_tokens=(8, 16), seed=11,
        )
        for mode, pruning in (("dense", None), ("spatten", PRUNING)):
            mono = run_chunk_mode(config, model, requests, pruning, None)
            chunked = run_chunk_mode(
                config, model, requests, pruning, CHUNK_TOKENS
            )
            rows.append((rate, mode, mono, chunked))
    return rows


def test_chunked_prefill_ttft_under_load(long_prompt_world, benchmark,
                                         publish):
    """Chunked prefill beats the monolithic stall on both latency tails."""
    config, model, corpus = long_prompt_world
    rates = [600.0, 1200.0]
    rows = benchmark.pedantic(
        chunked_prefill_sweep,
        args=(config, model, corpus, rates, 20), rounds=1, iterations=1,
    )

    ms = 1e3
    table = Table(
        title="chunked vs monolithic prefill under load "
              f"(prompt {CHUNK_PROMPT_LEN}, chunk {CHUNK_TOKENS}, pool: "
              f"{CHUNK_POOL_PAGES} pages x {PAGE_TOKENS} tokens)",
        headers=["rate (req/s)", "mode", "prefill", "ttft p95 (ms)",
                 "decode p95 (ms/tok)", "ttft p50 (ms)", "tok/s"],
    )
    for rate, mode, mono, chunked in rows:
        for label, stats in (("monolithic", mono), ("chunked", chunked)):
            table.add_row(
                f"{rate:.0f}", mode, label,
                f"{stats.ttft_p95 * ms:.1f}",
                f"{stats.decode_latency_p95 * ms:.2f}",
                f"{stats.ttft_p50 * ms:.1f}",
                f"{stats.throughput_tps:.0f}",
            )
    table.add_note(
        "identical Poisson traces and pool budget per row pair; decode "
        "latency is the inter-token gap, so it exposes head-of-line "
        "prefill stalls; token streams are bit-identical across the "
        "prefill modes"
    )
    publish("serving_chunked_prefill", table)

    for rate, mode, mono, chunked in rows:
        # Same tokens, step by step — chunking changes scheduling only.
        assert (
            [r.token_ids for r in chunked.records]
            == [r.token_ids for r in mono.records]
        ), f"{mode}@{rate}: chunked prefill changed the sampled tokens"
        # The head-of-line fix: strictly better latency tails.
        assert chunked.ttft_p95 < mono.ttft_p95, f"{mode}@{rate}: ttft"
        assert chunked.decode_latency_p95 < mono.decode_latency_p95, (
            f"{mode}@{rate}: decode latency"
        )


@pytest.mark.smoke
def test_chunked_prefill_smoke(long_prompt_world, publish, history):
    """Single rate, both modes — the tier-1 chunked-prefill check."""
    config, model, corpus = long_prompt_world
    requests = synthetic_request_trace(
        corpus, n_requests=14, rate_per_s=1000.0,
        prompt_len=CHUNK_PROMPT_LEN, max_new_tokens=(8, 16), seed=11,
    )
    table = Table(
        title="chunked prefill smoke (rate 1000 req/s)",
        headers=["mode", "prefill", "ttft p95 (ms)", "decode p95 (ms/tok)"],
    )
    for mode, pruning in (("dense", None), ("spatten", PRUNING)):
        mono = run_chunk_mode(config, model, requests, pruning, None)
        chunked = run_chunk_mode(config, model, requests, pruning,
                                 CHUNK_TOKENS)
        for label, stats in (("monolithic", mono), ("chunked", chunked)):
            table.add_row(mode, label, f"{stats.ttft_p95 * 1e3:.1f}",
                          f"{stats.decode_latency_p95 * 1e3:.2f}")
        assert (
            [r.token_ids for r in chunked.records]
            == [r.token_ids for r in mono.records]
        )
        assert chunked.ttft_p95 < mono.ttft_p95
        assert chunked.decode_latency_p95 < mono.decode_latency_p95
        if mode == "spatten":
            history("chunked_prefill", {
                "ttft_p95_ms": metric(chunked.ttft_p95 * 1e3, "ms",
                                      "lower"),
                "decode_p95_ms": metric(
                    chunked.decode_latency_p95 * 1e3, "ms", "lower"
                ),
            }, context={"mode": mode, "prefill": "chunked"})
    publish("serving_chunked_prefill_smoke", table)


@pytest.mark.smoke
def test_serving_throughput_smoke(serving_world, publish, history):
    """Single saturated rate, small trace — the tier-1 smoke check."""
    config, model, corpus = serving_world
    requests = synthetic_request_trace(
        corpus, n_requests=8, rate_per_s=1000.0, prompt_len=48,
        max_new_tokens=(8, 16), seed=7,
    )
    dense = run_mode(config, model, requests, None)
    spatten = run_mode(config, model, requests, PRUNING)
    table = Table(
        title="serving smoke (rate 1000 req/s)",
        headers=["mode", "tok/s", "mean batch", "pages reclaimed"],
    )
    for mode, stats in (("dense", dense), ("spatten", spatten)):
        table.add_row(mode, f"{stats.throughput_tps:.0f}",
                      f"{stats.mean_batch_size:.2f}",
                      str(stats.reclaimed_pages))
    publish("serving_throughput_smoke", table)
    history("serving_throughput", {
        "dense_tps": metric(dense.throughput_tps, "tok/s", "higher"),
        "spatten_tps": metric(spatten.throughput_tps, "tok/s", "higher"),
        "spatten_reclaimed_pages": metric(
            spatten.reclaimed_pages, "pages", "higher"
        ),
    }, context={"rate_per_s": 1000.0, "n_requests": 8})
    assert spatten.throughput_tps > dense.throughput_tps
    assert spatten.reclaimed_pages > 0
