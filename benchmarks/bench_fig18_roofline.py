"""Fig. 18: roofline analysis — SpAtten sits near its compute roof on
BERT and near the bandwidth roof on GPT-2; the GPU sits far below both
of its roofs."""

from repro.baselines.roofline import classify
from repro.eval import experiments as E


def test_fig18_roofline(benchmark, publish):
    result = benchmark.pedantic(E.fig18_roofline, rounds=1, iterations=1)
    publish("fig18_roofline", result.table)
    by_label = {p.label: p for p in result.points}
    assert classify(result.spatten_roofline, by_label["SpAtten BERT"]) == "compute-bound"
    assert classify(result.spatten_roofline, by_label["SpAtten GPT-2"]) == "memory-bound"
    assert by_label["SpAtten BERT"].utilisation(result.spatten_roofline) > 0.3
    assert by_label["TITAN Xp BERT"].utilisation(result.gpu_roofline) < 0.05
