"""Section IV-B/IV-C: the quick-select top-k engine vs a Batcher
odd-even full-sort unit on length-1024 median selections (paper: 1.4x
higher throughput at 3.5x smaller power)."""

from repro.eval import experiments as E


def test_topk_engine_vs_sorter(benchmark, publish):
    result = benchmark.pedantic(
        E.topk_engine_comparison, rounds=1, iterations=1
    )
    publish("topk_engine_comparison", result.table)
    assert result.throughput_ratio > 1.0
    assert result.power_ratio > 1.5
