"""Ablation studies beyond the paper's figures: per-technique isolation
(the paper quotes token 3.8x, head 1.1x, progressive quantization 5.1x
DRAM reductions on GPT-2) and the Section V-B GPU-token-pruning
experiment ("3x pruning ratio brings up to 2.3x speedup for BERT")."""

import pytest

from repro.eval import experiments as E


def test_ablation_pruning_components(benchmark, publish):
    result = benchmark.pedantic(
        E.ablation_pruning_components, rounds=1, iterations=1
    )
    publish("ablation_pruning_components", result.table)
    # Paper's isolated contributions on GPT-2.
    assert result.dram_reduction["token pruning only"] == pytest.approx(3.8, rel=0.15)
    assert result.dram_reduction["head pruning only"] == pytest.approx(1.15, rel=0.15)
    assert result.dram_reduction["progressive quantization only"] == pytest.approx(
        5.1, rel=0.15
    )
    # Techniques compound.
    assert result.dram_reduction["everything"] > (
        0.8 * result.dram_reduction["token pruning only"]
        * result.dram_reduction["progressive quantization only"]
    )


def test_gpu_token_pruning(benchmark, publish):
    result = benchmark.pedantic(E.gpu_token_pruning, rounds=1, iterations=1)
    publish("gpu_token_pruning", result.table)
    # Pruning helps the GPU too, but far less than a dedicated design:
    # the longest task gains the most (paper: up to 2.3x at 3x pruning).
    assert 1.0 <= result.geomean < 2.0
    assert result.speedups["bert-base-squad-v1"] > result.speedups["bert-base-cola"]
