"""Table I: SpAtten architectural setup."""

from repro.eval import experiments as E
from repro.hardware import SPATTEN_FULL


def test_table1_architecture(benchmark, publish):
    table = benchmark.pedantic(E.table1_architecture, rounds=1, iterations=1)
    publish("table1_arch_setup", table)
    assert SPATTEN_FULL.compute_roof_flops == 2.048e12
    assert SPATTEN_FULL.dram_bandwidth == 512e9
