"""Fig. 7: int4 attention-probability error vs the row's max
probability — dominated distributions quantize almost losslessly, which
is the observation progressive quantization is built on."""

from repro.eval import quality_experiments as Q


def test_fig07_quant_error(benchmark, publish):
    result = benchmark.pedantic(
        Q.fig07_quant_error, rounds=1, iterations=1
    )
    publish("fig07_quant_error", result.table)
    assert result.correlation < -0.4
