"""Fig. 2: end-to-end GPT-2 latency breakdown — attention accounts for
~half of the latency on GPU/CPU/Nano, and data movement for 73% of the
GPU's attention time."""

from repro.eval import experiments as E


def test_fig02_latency_breakdown(benchmark, publish):
    result = benchmark.pedantic(
        E.fig02_latency_breakdown, rounds=1, iterations=1
    )
    publish("fig02_latency_breakdown", result.table)
    for fraction in result.platform_attention_fraction.values():
        assert 0.35 < fraction < 0.75  # paper: 50% / 61% / 49%
