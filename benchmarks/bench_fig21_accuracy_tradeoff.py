"""Fig. 21: pruning-ratio vs accuracy-loss trade-off curves — token
pruning on a PTB-style LM and head pruning on a CoLA-style classifier
(paper: ~4x tokens and ~1.2x heads are free; beyond that, a cliff)."""

import pytest

from repro.eval import quality_experiments as Q


def test_fig21_accuracy_tradeoff(benchmark, publish):
    result = benchmark.pedantic(
        Q.fig21_accuracy_tradeoff, rounds=1, iterations=1
    )
    publish("fig21_accuracy_tradeoff", result.table)
    assert result.token_losses[0] == pytest.approx(0.0)
    assert result.token_losses[1] > -0.07  # ~2x free
    assert min(result.token_losses) < -0.04  # cliff at extreme ratios
    assert result.head_losses[0] == pytest.approx(0.0)
    assert min(result.head_losses) < -0.015
