"""Numerics ladder: decode-step speedup vs distribution drift per tier.

``benchmarks/bench_decode_step.py`` recorded the honest ceiling of the
bit-identical packed backend (~2× at batch 16: padding-variant BLAS
reductions force exact-length per-sequence matmuls plus the shared fp64
FFN tax).  This bench measures what the :mod:`repro.nn.numerics` ladder
buys *past* that ceiling once the contract is an accuracy budget
instead of a bit budget — and charges every tier against the budget it
declared:

* ``exact``  — the policy plumbing at fp64; asserted ``np.array_equal``
  with the per-sequence looped oracle every teacher-forced step.
* ``fp32``   — fp32 KV planes + the padded ``[B, h, 1, max_len]``
  masked-softmax core.  Gate: ≥ 1.5× over packed-exact at batch 16.
* ``int8``   — same core over int8 KV codes with per-(head, column)
  fp32 scales.  Gate: ≥ 3× over packed-exact at batch 16.

Quality is measured teacher-forced against the fp64 looped oracle so
every tier sees identical inputs at every step: mean KL(oracle ‖ tier)
over next-token distributions, argmax-match rate, and the mean
next-token NLL delta (task-quality proxy).  A tier exceeding its
declared ``kl_budget`` / ``argmax_budget`` fails the build — the
ladder is only allowed to be fast where it is provably accurate
enough.

Measurement protocol: wall-clock per-step times are *interleaved
best-of-N trials* — every trial times all tiers back to back on
freshly cloned prefilled executors, and each tier reports its minimum.
Sequential per-tier timing is dominated by machine noise on a shared
runner (the exact baseline alone fluctuates ±10%); interleaving means
a load spike inflates one trial of every tier instead of one tier's
whole measurement, and best-of tracks the true cost (a genuine
regression slows every trial).
"""

import copy
import time

import numpy as np
import pytest

from repro.config import GPT2_SMALL
from repro.eval.reporting import Table
from repro.nn import PackedDecodeBackend
from repro.nn.functional import log_softmax
from repro.nn.numerics import NUMERICS_LADDER, resolve_numerics
from repro.nn.transformer import DenseExecutor
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
)

BATCH = 16
PREFILL = 64
PAGE_TOKENS = 16


@pytest.fixture(scope="module")
def numerics_world():
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=6, d_model=128, n_heads=8,
        max_seq_len=2048,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    rng = np.random.default_rng(7)
    prompts = [
        rng.integers(0, config.vocab_size, size=PREFILL).tolist()
        for _ in range(BATCH)
    ]
    return config, model, prompts


def build_tier(model, prompts, tier):
    """Prefilled executors + packed backend for one ladder tier."""
    policy = resolve_numerics(tier)
    backend = PackedDecodeBackend(model, numerics=policy)
    executors = []
    for prompt in prompts:
        ex = DenseExecutor(kv_page_tokens=PAGE_TOKENS, numerics=policy)
        model.prefill(prompt, ex)
        executors.append(ex)
    return backend, executors


def measure_quality(model, prompts, steps):
    """Teacher-forced sweep vs the fp64 looped oracle.

    Every tier decodes the *same* oracle-chosen token at every step, so
    the per-step distributions are directly comparable.  Returns
    ``(per_tier_quality, token_streams)`` where ``token_streams`` is
    the oracle step-token list reused by the timing pass, and each
    tier's quality dict carries ``kl`` (mean KL(oracle ‖ tier)),
    ``argmax`` (match rate vs the oracle argmax), and ``nll_delta``
    (mean next-token NLL excess over the oracle).  The ``exact`` tier
    is additionally asserted bit-identical (``np.array_equal``) to the
    looped oracle at every step.
    """
    oracle_execs = [DenseExecutor(kv_page_tokens=PAGE_TOKENS)
                    for _ in prompts]
    for ex, prompt in zip(oracle_execs, prompts):
        model.prefill(prompt, ex)
    tiers = {t: build_tier(model, prompts, t) for t in NUMERICS_LADDER}

    acc = {t: {"kl": 0.0, "match": 0, "nll_o": 0.0, "nll_t": 0.0}
           for t in NUMERICS_LADDER}
    tokens = [3] * len(prompts)
    token_streams = []
    n_rows = 0
    for step in range(steps):
        token_streams.append(list(tokens))
        positions = [PREFILL + step] * len(prompts)
        oracle = model.decode_step_batch(tokens, positions, oracle_execs)
        next_tokens = [int(np.argmax(row)) for row in oracle]
        log_p = log_softmax(oracle, axis=-1)
        p = np.exp(log_p)
        for tier, (backend, execs) in tiers.items():
            logits = model.decode_step_batch(
                tokens, positions, execs, backend=backend
            )
            if tier == "exact":
                assert np.array_equal(logits, oracle), (
                    f"exact tier broke bit identity at step {step}"
                )
            log_q = log_softmax(np.asarray(logits, dtype=np.float64),
                                axis=-1)
            a = acc[tier]
            a["kl"] += float(np.sum(p * (log_p - log_q)))
            a["match"] += sum(
                int(np.argmax(row)) == nt
                for row, nt in zip(logits, next_tokens)
            )
            rows = np.arange(len(prompts))
            a["nll_o"] += float(-log_p[rows, next_tokens].sum())
            a["nll_t"] += float(-log_q[rows, next_tokens].sum())
        tokens = next_tokens
        n_rows += len(prompts)

    quality = {}
    for tier, a in acc.items():
        quality[tier] = {
            "kl": a["kl"] / n_rows,
            "argmax": a["match"] / n_rows,
            "nll_delta": (a["nll_t"] - a["nll_o"]) / n_rows,
        }
    return quality, token_streams


def measure_times(model, prompts, token_streams, trials):
    """Interleaved best-of-``trials`` per-step wall clock per tier.

    Each trial clones fresh prefilled executors for *every* tier and
    times them back to back over the same teacher-forced token streams;
    per-tier cost is the minimum across trials (see module docstring
    for why interleaved best-of beats sequential timing on a shared
    runner).
    """
    steps = len(token_streams)
    prototypes = {t: build_tier(model, prompts, t) for t in NUMERICS_LADDER}
    samples = {t: [] for t in NUMERICS_LADDER}
    for _ in range(trials):
        for tier in NUMERICS_LADDER:
            backend, proto = prototypes[tier]
            execs = [copy.deepcopy(ex) for ex in proto]
            start = time.perf_counter()
            for step, tokens in enumerate(token_streams):
                model.decode_step_batch(
                    tokens, [PREFILL + step] * len(prompts), execs,
                    backend=backend,
                )
            samples[tier].append((time.perf_counter() - start) / steps)
    return {t: float(np.min(s)) for t, s in samples.items()}


def ladder_table(times, quality, title):
    table = Table(
        title=title,
        headers=["tier", "ms/step", "speedup vs exact", "mean KL",
                 "argmax match", "NLL delta", "KV bytes/elem"],
    )
    for tier in NUMERICS_LADDER:
        policy = resolve_numerics(tier)
        q = quality[tier]
        table.add_row(
            tier,
            f"{times[tier] * 1e3:.2f}",
            f"{times['exact'] / times[tier]:.2f}x",
            f"{q['kl']:.2e}",
            f"{q['argmax']:.4f}",
            f"{q['nll_delta']:+.2e}",
            str(policy.storage_bytes_per_element(2)),
        )
    table.add_note(
        f"batch {BATCH}, prefill {PREFILL}; teacher-forced vs the fp64 "
        f"looped oracle (identical inputs every step); exact tier "
        f"asserted bit-identical"
    )
    table.add_note(
        "interleaved best-of-N trials per tier (every trial times all "
        "tiers back to back on fresh executors; min taken per tier)"
    )
    table.add_note(
        "declared budgets enforced: fp32 KL<=5e-4 argmax>=0.995, "
        "int8 KL<=5e-2 argmax>=0.99 (repro.nn.numerics)"
    )
    table.add_note(
        "KV bytes/elem is the DRAM *accounting* width: the exact tier "
        "keeps the model's declared width (2 here), fp32/int8 override it"
    )
    return table


def assert_quality_budgets(quality):
    """The gate the ladder's contract promises: exceed your declared
    accuracy budget and the build fails."""
    for tier, q in quality.items():
        policy = resolve_numerics(tier)
        if policy.is_exact:
            assert q["kl"] == 0.0 and q["argmax"] == 1.0
            continue
        assert q["kl"] <= policy.kl_budget, (
            f"{tier}: mean KL {q['kl']:.3e} exceeds declared budget "
            f"{policy.kl_budget:.0e}"
        )
        assert q["argmax"] >= policy.argmax_budget, (
            f"{tier}: argmax match {q['argmax']:.4f} below declared "
            f"budget {policy.argmax_budget}"
        )


def test_numerics_ladder(numerics_world, benchmark, publish):
    _, model, prompts = numerics_world
    quality, token_streams = benchmark.pedantic(
        measure_quality, args=(model, prompts, 96), rounds=1, iterations=1
    )
    times = measure_times(model, prompts, token_streams, trials=4)
    publish("numerics", ladder_table(
        times, quality,
        "numerics ladder: decode step at an accuracy budget (batch 16)",
    ))
    assert_quality_budgets(quality)
    # The headline wins past the bit-identity ceiling (measured 3.6x
    # fp32 and 3.2x int8 at batch 16), gated at the issue's floors.
    assert times["exact"] / times["fp32"] >= 1.5, (
        "fp32 tier lost its >=1.5x win over packed-exact"
    )
    assert times["exact"] / times["int8"] >= 3.0, (
        "int8 tier lost its >=3x win over packed-exact"
    )


@pytest.mark.smoke
def test_numerics_smoke(numerics_world, publish, history):
    """Tier-1 gate: quality budgets are hard (near-deterministic
    teacher-forced math), wall-clock floors carry shared-runner slack
    with the full ratios tracked by the regression history."""
    from repro.insight import metric

    _, model, prompts = numerics_world
    quality, token_streams = measure_quality(model, prompts, 32)
    times = measure_times(model, prompts, token_streams, trials=3)
    publish("numerics_smoke", ladder_table(
        times, quality, "numerics ladder smoke (batch 16)",
    ))
    assert_quality_budgets(quality)
    history("numerics", {
        "fp32_speedup": metric(times["exact"] / times["fp32"], "x",
                               "higher", rel_tol=0.5),
        "int8_speedup": metric(times["exact"] / times["int8"], "x",
                               "higher", rel_tol=0.5),
        "int8_kl": metric(quality["int8"]["kl"], "nats", "lower",
                          rel_tol=0.6),
        "int8_argmax": metric(quality["int8"]["argmax"], "frac",
                              "higher", rel_tol=0.05),
    }, context={"batch": BATCH, "prefill": PREFILL})
    # Wall-clock floors with slack for loaded runners; the full bench
    # (and the history gate) hold the 1.5x / 3x lines.
    assert times["exact"] / times["fp32"] >= 1.2, "fp32 speedup regressed"
    assert times["exact"] / times["int8"] >= 2.0, "int8 speedup regressed"
