"""Table II: power breakdown over the 30-benchmark mix (paper: 1.36 W
logic, 1.24 W SRAM, 5.71 W DRAM, 8.30 W total)."""

from repro.eval import experiments as E


def test_table2_power(benchmark, publish):
    result = benchmark.pedantic(E.table2_power, rounds=1, iterations=1)
    publish("table2_power", result.table)
    assert 4.0 < result.total_w < 14.0
    assert result.dram_w > max(result.logic_w, result.sram_w)
