"""Section V-B headline numbers: DRAM 10.0x, computation 2.1x,
token+value pruning 1.9x (3.8x GPT-2), head pruning 1.1x, and the
1.61 / 0.43 TFLOPS effective throughputs."""

from repro.eval import experiments as E


def test_headline_reductions(benchmark, publish):
    result = benchmark.pedantic(E.headline_reductions, rounds=1, iterations=1)
    publish("headline_reductions", result.table)
    assert 5.0 < result.dram_reduction < 20.0  # paper: 10.0x
    assert 2.8 < result.token_value_reduction_gpt2 < 5.5  # paper: 3.8x
    assert 1.03 < result.head_reduction < 1.35  # paper: 1.1x
