"""Chaos soak: the fleet under deterministic fault plans.

One fixed arrival trace is replayed through a two-replica cluster
under seeded :class:`repro.faults.FaultPlan` schedules, sweeping
fault-plan seed x intensity profile (``light`` / ``moderate`` /
``heavy``), plus a pressure cell that runs the graceful-degradation
ladder on a deliberately starved pool.  Four claims are gated,
matching the acceptance bar:

1. **ledgers stay clean**: every chaos run audits the sharded pool
   after each placement (``audit_every=1``) and once more after the
   run;
2. **zero token loss**: every non-failed request delivers its full
   decode budget, and every surviving non-degraded stream is
   bit-identical to the fault-free baseline's (crashes, stragglers,
   and corruption cost latency, never tokens);
3. **goodput retention**: mean goodput across the ``moderate`` seeds
   stays at or above 70% of the fault-free baseline;
4. **deterministic replay**: re-running a chaos cell under the same
   plan reproduces the stats document byte for byte.

The degradation cell additionally requires the ladder to be
*observable*: under sustained pressure the fleet must shed best-effort
load and escalate schedules (with preemption as the existing
backstop), all visible in the archived counters.

Fleet-health metrics (availability, MTTR, retries, recoveries) are
archived per cell under ``benchmarks/results/chaos_soak.txt`` and, for
downstream tooling, ``benchmarks/results/chaos_soak.json``.
"""

import json
from pathlib import Path

import pytest

from repro.cluster import ClusterEngine, ShardedKVPool
from repro.config import GPT2_SMALL, PruningConfig
from repro.eval.reporting import Table
from repro.faults import CHAOS_PROFILES, FaultPlan
from repro.serving import DegradationPolicy, Request, RequestStatus
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    make_lm_corpus,
    synthetic_request_trace,
)

RESULTS_DIR = Path(__file__).parent / "results"

PAGE_TOKENS = 8
POOL_PAGES = 128
DEGRADE_POOL_PAGES = 48
N_REPLICAS = 2
PROMPT_LEN = 24
N_REQUESTS = 24
RATE = 1200.0
TRACE_SEED = 11
RETRY_BUDGET = 4
RETRY_BACKOFF_S = 0.01

SOAK_SEEDS = list(range(6))
SMOKE_SEEDS = list(range(3))
PROFILES = ["light", "moderate", "heavy"]
GOODPUT_RETENTION_FLOOR = 0.70

AGGRESSIVE = PruningConfig(
    token_keep_final=0.3, head_keep_final=0.625, value_keep=0.9
)
DEGRADE_POLICY = DegradationPolicy(
    free_page_frac=0.5, sustain_steps=2, shed_priority_floor=1,
    reprune=AGGRESSIVE,
)


@pytest.fixture(scope="module")
def chaos_world():
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=4, d_model=64, n_heads=4,
        max_seq_len=160,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=4096, seed=2)
    return config, model, corpus


def make_pool(config, pages=POOL_PAGES):
    per_token = 2 * config.n_heads * config.head_dim * config.bytes_per_element
    return ShardedKVPool(
        config, total_budget_bytes=pages * PAGE_TOKENS * per_token,
        n_replicas=N_REPLICAS, page_tokens=PAGE_TOKENS,
    )


def soak_trace(corpus):
    return synthetic_request_trace(
        corpus, n_requests=N_REQUESTS, rate_per_s=RATE,
        prompt_len=PROMPT_LEN, max_new_tokens=(8, 16), seed=TRACE_SEED,
    )


def tiered(requests):
    """Alternate interactive (0) and best-effort (1) priority tiers."""
    return [
        Request(r.request_id, r.prompt_ids, r.max_new_tokens,
                r.arrival_time, priority=r.request_id % 2)
        for r in requests
    ]


def run_cell(config, model, requests, plan=None, pages=POOL_PAGES,
             degradation=None, admission="reserve"):
    pool = make_pool(config, pages)
    stats = ClusterEngine(
        model, pool, policy="least_loaded",
        fault_plan=plan,
        heartbeat_timeout_s=(
            plan.heartbeat_timeout_s if plan is not None else None
        ),
        retry_budget=RETRY_BUDGET, retry_backoff_s=RETRY_BACKOFF_S,
        degradation=degradation, admission=admission,
        audit_every=1,
    ).run(requests)
    pool.audit()
    return stats


def surviving_tokens(stats):
    """request_id -> stream for FINISHED, non-degraded records."""
    return {
        r.request.request_id: list(r.token_ids)
        for r in stats.fleet.records
        if r.status is RequestStatus.FINISHED and not r.degraded
    }


def check_no_token_loss(stats, base_tokens, label):
    for r in stats.fleet.records:
        assert r.status in (RequestStatus.FINISHED, RequestStatus.FAILED), (
            f"{label}: request {r.request.request_id} ended "
            f"{r.status.name}, neither FINISHED nor FAILED"
        )
        if r.status is RequestStatus.FINISHED:
            assert r.n_generated == r.request.max_new_tokens, (
                f"{label}: request {r.request.request_id} lost tokens"
            )
    for rid, stream in surviving_tokens(stats).items():
        assert stream == base_tokens[rid], (
            f"{label}: request {rid}'s surviving stream diverged from "
            f"the fault-free run"
        )


def cell_row(seed, profile, stats, baseline):
    return {
        "seed": seed,
        "profile": profile,
        "goodput_tps": stats.goodput_tps,
        "retention": stats.goodput_tps / baseline.goodput_tps,
        "availability": stats.availability,
        "mttr_s": None if stats.mttr_s != stats.mttr_s else stats.mttr_s,
        "n_failed_requests": stats.n_failed_requests,
        "n_recovered": stats.n_recovered,
        "n_retries": stats.n_retries,
        "n_breaker_trips": stats.n_breaker_trips,
        "n_corruptions": stats.fleet.n_corruptions,
    }


def chaos_matrix(config, model, requests, seeds, baseline):
    horizon = requests[-1].arrival_time + 0.05
    rows = []
    for profile in PROFILES:
        for seed in seeds:
            plan = FaultPlan.generate(
                seed, n_replicas=N_REPLICAS, horizon_s=horizon,
                profile=profile,
            )
            stats = run_cell(config, model, requests, plan=plan)
            rows.append((plan, stats, cell_row(seed, profile, stats,
                                               baseline)))
    return rows


def make_matrix_table(rows, baseline, title):
    table = Table(
        title=title,
        headers=["profile", "seed", "goodput tok/s", "retention",
                 "avail", "mttr (ms)", "failed", "recovered", "retries",
                 "breaker", "corrupt"],
    )
    table.add_row("(fault-free)", "-", f"{baseline.goodput_tps:.0f}",
                  "1.00", "100%", "-", "0", "0", "0", "0", "0")
    for _, _, row in rows:
        mttr = "-" if row["mttr_s"] is None else f"{row['mttr_s']*1e3:.1f}"
        table.add_row(
            row["profile"], str(row["seed"]),
            f"{row['goodput_tps']:.0f}", f"{row['retention']:.2f}",
            f"{row['availability']:.0%}", mttr,
            str(row["n_failed_requests"]), str(row["n_recovered"]),
            str(row["n_retries"]), str(row["n_breaker_trips"]),
            str(row["n_corruptions"]),
        )
    table.add_note(
        f"one trace ({N_REQUESTS} requests at {RATE:.0f} req/s) replayed "
        f"per cell under a seeded FaultPlan; every cell audits the "
        f"sharded ledger after each placement, loses no tokens, and "
        f"replays byte-identically; goodput = FINISHED tokens / makespan"
    )
    return table


def make_degrade_table(stats, baseline):
    f = stats.fleet
    table = Table(
        title="graceful degradation under pressure (starved pool)",
        headers=["pool pages", "goodput tok/s", "shed", "repruned",
                 "preempts", "failed", "finished"],
    )
    table.add_row(
        str(DEGRADE_POOL_PAGES), f"{stats.goodput_tps:.0f}",
        str(f.n_shed), str(f.n_repruned), str(f.n_preemptions),
        str(stats.n_failed_requests),
        str(sum(r.status is RequestStatus.FINISHED for r in f.records)),
    )
    table.add_note(
        f"same trace on a pool starved to {DEGRADE_POOL_PAGES} pages "
        f"(vs {POOL_PAGES} baseline at {baseline.goodput_tps:.0f} tok/s): "
        f"the ladder sheds best-effort arrivals, then escalates "
        f"head-of-line schedules to the aggressive cascade; preemption "
        f"stays the final backstop"
    )
    return table


def archive_json(rows, baseline, degrade_stats):
    RESULTS_DIR.mkdir(exist_ok=True)
    f = degrade_stats.fleet
    doc = {
        "trace": {"n_requests": N_REQUESTS, "rate_per_s": RATE,
                  "seed": TRACE_SEED},
        "baseline_goodput_tps": baseline.goodput_tps,
        "retention_floor": GOODPUT_RETENTION_FLOOR,
        "cells": [row for _, _, row in rows],
        "degradation": {
            "pool_pages": DEGRADE_POOL_PAGES,
            "goodput_tps": degrade_stats.goodput_tps,
            "n_shed": f.n_shed,
            "n_repruned": f.n_repruned,
            "n_preemptions": f.n_preemptions,
            "n_failed_requests": degrade_stats.n_failed_requests,
        },
    }
    path = RESULTS_DIR / "chaos_soak.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def check_claims(config, model, requests, rows, baseline):
    base_tokens = surviving_tokens(baseline)
    for plan, stats, row in rows:
        label = f"seed {row['seed']}/{row['profile']}"
        check_no_token_loss(stats, base_tokens, label)
    moderate = [row for _, _, row in rows if row["profile"] == "moderate"]
    retention = sum(r["retention"] for r in moderate) / len(moderate)
    assert retention >= GOODPUT_RETENTION_FLOOR, (
        f"moderate-intensity goodput retention {retention:.2f} fell "
        f"below the {GOODPUT_RETENTION_FLOOR:.0%} acceptance floor"
    )
    # Deterministic replay of the first moderate cell, byte for byte.
    plan, stats, _ = next(
        r for r in rows if r[2]["profile"] == "moderate"
    )
    replay = run_cell(config, model, requests, plan=plan)
    assert replay.to_json() == stats.to_json(), (
        "chaos run is not deterministic: replay under the same plan "
        "produced a different stats document"
    )


def run_degrade_cell(config, model, requests):
    stats = run_cell(
        config, model, tiered(requests), pages=DEGRADE_POOL_PAGES,
        degradation=DEGRADE_POLICY, admission="optimistic",
    )
    f = stats.fleet
    assert f.n_shed > 0, "degradation ladder never shed load"
    assert f.n_repruned > 0, "degradation ladder never escalated pruning"
    for r in f.records:
        if r.status is RequestStatus.FINISHED:
            assert r.n_generated == r.request.max_new_tokens
    return stats


def test_chaos_soak(chaos_world, benchmark, publish):
    config, model, corpus = chaos_world
    requests = soak_trace(corpus)
    baseline = run_cell(config, model, requests)
    rows = benchmark.pedantic(
        chaos_matrix, args=(config, model, requests, SOAK_SEEDS, baseline),
        rounds=1, iterations=1,
    )
    check_claims(config, model, requests, rows, baseline)
    degrade_stats = run_degrade_cell(config, model, requests)
    publish(
        "chaos_soak",
        make_matrix_table(rows, baseline,
                          "chaos soak: fault-plan seed x intensity"),
        make_degrade_table(degrade_stats, baseline),
    )
    archive_json(rows, baseline, degrade_stats)


@pytest.mark.smoke
def test_chaos_smoke(chaos_world, publish, history):
    """Tier-1 gate: a reduced seed sweep plus the degradation cell.

    Fails the build if any chaos cell dirties the ledger, loses a
    token, drops moderate-intensity goodput retention below the
    acceptance floor, replays non-deterministically, or if the
    degradation ladder stops being observable under pressure.
    """
    config, model, corpus = chaos_world
    requests = soak_trace(corpus)
    baseline = run_cell(config, model, requests)
    rows = chaos_matrix(config, model, requests, SMOKE_SEEDS, baseline)
    check_claims(config, model, requests, rows, baseline)
    degrade_stats = run_degrade_cell(config, model, requests)
    from repro.insight import metric

    moderate = [row for _, _, row in rows if row["profile"] == "moderate"]
    retention = sum(r["retention"] for r in moderate) / len(moderate)
    history("chaos", {
        "baseline_goodput_tps": metric(baseline.goodput_tps, "tok/s",
                                       "higher"),
        "moderate_retention": metric(retention, "x", "higher"),
    }, context={"seeds": len(SMOKE_SEEDS)})
    publish(
        "chaos_soak_smoke",
        make_matrix_table(rows, baseline,
                          "chaos soak (smoke): fault-plan seed x intensity"),
        make_degrade_table(degrade_stats, baseline),
    )
    archive_json(rows, baseline, degrade_stats)
