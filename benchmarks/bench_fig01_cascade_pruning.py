"""Fig. 1: cascade token and head pruning across layers on an
SST-2-style sentence (11 tokens -> 2, 12 heads -> 8, compute 100% ->
38% -> 12% in the paper)."""

from repro.eval import quality_experiments as Q


def test_fig01_cascade_pruning(benchmark, publish):
    result = benchmark.pedantic(
        Q.fig01_cascade_pruning, rounds=1, iterations=1
    )
    publish("fig01_cascade_pruning", result.table)
    assert result.tokens_per_layer[-1] == 2
    assert result.compute_fraction_per_layer[-1] < 0.35
    assert result.predicted_label == result.dense_label
