"""Table IV: FC & attention FLOPs and latency breakdown on
GPT-2-Medium generation, GPU vs SpAtten-e2e (paper: GPU 388/367 ms at
48.6% attention; SpAtten-e2e 25.75/2.13 ms at 7.6% attention)."""

import pytest

from repro.eval import experiments as E


def test_table4_e2e_breakdown(benchmark, publish):
    result = benchmark.pedantic(E.table4_e2e_breakdown, rounds=1, iterations=1)
    publish("table4_e2e_breakdown", result.table)
    assert result.fc_gflops == pytest.approx(19.3, rel=0.05)
    assert result.attn_gflops_dense == pytest.approx(3.3, rel=0.1)
    e2e_frac = result.e2e_attn_ms / (result.e2e_attn_ms + result.e2e_fc_ms)
    assert e2e_frac < 0.15  # paper: 7.6%
