"""Fig. 13: on-chip area and power breakdowns (paper: 18.71 mm^2; Q x K
and prob x V dominate both)."""

import pytest

from repro.eval import experiments as E


def test_fig13_breakdowns(benchmark, publish):
    result = benchmark.pedantic(E.fig13_breakdowns, rounds=1, iterations=1)
    publish("fig13_breakdowns", result.table)
    assert sum(result.area_mm2.values()) == pytest.approx(18.71, abs=0.01)
