"""Fig. 22/23: interpretability — progressive token-pruning renderings
of the paper's three example sentences, and the per-layer cumulative
importance map of a GPT-2-style model."""

from repro.eval import quality_experiments as Q


def test_fig22_visualization(benchmark, publish):
    result = benchmark.pedantic(Q.fig22_visualization, rounds=1, iterations=1)
    fig23 = Q.fig23_importance_map()
    publish("fig22_fig23_visualization", result.table, fig23.table)
    for stages in result.visualisations.values():
        final = stages[-1].surviving_words
        assert not {"the", "a", "is", "to", "and"}.intersection(final)
