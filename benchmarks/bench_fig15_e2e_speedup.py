"""Fig. 15: end-to-end SpAtten-e2e speedup over GPU/CPU with 8-bit and
12-bit FC weights (paper geomeans: 35x/24x over GPU, 122x/83x over
CPU)."""

from repro.eval import experiments as E


def test_fig15_e2e_speedup(benchmark, publish):
    result = benchmark.pedantic(E.fig15_e2e_speedup, rounds=1, iterations=1)
    publish("fig15_e2e_speedup", result.table)
    assert 15 < result.geomeans[8]["titan-xp"] < 80
    assert result.geomeans[8]["titan-xp"] > result.geomeans[12]["titan-xp"]
    assert result.geomeans[8]["xeon-e5-2640"] > result.geomeans[8]["titan-xp"]
