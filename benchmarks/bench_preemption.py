"""Admission-mode sweep: reservation vs optimistic + preemption.

One pruning-heavy trace — mostly short and long prompts on an
aggressive cascade schedule, a dense minority for pressure — is
replayed through the serving engine at a *fixed, tight* pool budget
under every admission configuration:

* ``reserve`` — the PR-1 contract: worst-case schedule-bound pages
  held from admission to retirement.  Pages reclaimed by mid-flight
  pruning drain back to the pool but cannot admit work already refused
  at reservation time — the admission-starvation bug this sweep
  quantifies.
* ``optimistic`` (× victim policy) — admission bills the prompt
  footprint against *actual* usage; decode growth is recovered by
  preemption (recompute-on-preempt) when the optimism turns out wrong.

Three claims are gated, matching the acceptance bar:

1. optimistic admission + preemption **strictly improves throughput
   and TTFT p95** over reservation-only admission at the same pool
   budget;
2. **zero token loss**: every cell commits bit-identical per-request
   token streams (greedy recompute replays exactly), and every request
   runs to its full decode budget;
3. the pool ledger stays clean: the engine audits after every
   preemption cycle, and the final audit passes here for every cell —
   with preemption actually exercised (``n_preemptions > 0``).
"""

import pytest

from repro.config import GPT2_SMALL, PruningConfig
from repro.eval.reporting import Table
from repro.serving import KVMemoryPool, ServingEngine
from repro.workloads import (
    TrafficClass,
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    heterogeneous_request_trace,
    make_lm_corpus,
)

PAGE_TOKENS = 16
POOL_PAGES = 96
PREFILL_CHUNK = 32
TRACE_SEED = 29
N_REQUESTS = 48
RATE = 2000.0

HEAVY_PRUNING = PruningConfig(
    token_keep_final=0.3, head_keep_final=0.625, value_keep=0.9
)
#: Pruning-heavy: 85% of arrivals run the aggressive cascade schedule
#: (the workload whose reclaimed pages reserve-mode admission wastes);
#: a 15% dense minority keeps real pressure on the pool.
PRUNING_HEAVY_CLASSES = [
    TrafficClass("pruned-short", weight=0.55, prompt_len=32,
                 max_new_tokens=(16, 32), pruning=HEAVY_PRUNING),
    TrafficClass("pruned-long", weight=0.30, prompt_len=96,
                 max_new_tokens=(16, 32), pruning=HEAVY_PRUNING),
    TrafficClass("dense-short", weight=0.15, prompt_len=32,
                 max_new_tokens=(16, 32), pruning=None),
]

#: (admission, preempt_policy, headroom_pages) cells; reserve ignores
#: the policy and headroom.  ``headroom=0`` is fully optimistic — on
#: this trace it over-admits into a preemption thrash (recompute work
#: rivals useful work) and *loses* to reserve mode, which is exactly
#: why the headroom knob exists; 12 pages of slack absorbs the
#: resident set's decode growth and flips the sweep to a strict win
#: with preemption still exercised.
HEADROOM = 12
CELLS = [
    ("reserve", "-", 0),
    ("optimistic", "lowest_priority", 0),
    ("optimistic", "lowest_priority", HEADROOM),
    ("optimistic", "most_pages", HEADROOM),
    ("optimistic", "latest_arrival", HEADROOM),
]
SMOKE_CELLS = [
    ("reserve", "-", 0),
    ("optimistic", "lowest_priority", HEADROOM),
]
BASELINE_KEY = ("reserve", "-", 0)
OPTIMISTIC_KEY = ("optimistic", "lowest_priority", HEADROOM)


@pytest.fixture(scope="module")
def preemption_world():
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=6, d_model=128, n_heads=8,
        max_seq_len=256,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=8192, seed=2)
    return config, model, corpus


def pool_budget_bytes(config):
    per_token = 2 * config.n_heads * config.head_dim * config.bytes_per_element
    return POOL_PAGES * PAGE_TOKENS * per_token


def pruning_heavy_trace(corpus):
    return heterogeneous_request_trace(
        corpus, PRUNING_HEAVY_CLASSES, n_requests=N_REQUESTS,
        rate_per_s=RATE, seed=TRACE_SEED,
    )


def run_cell(config, model, requests, admission, policy, headroom):
    pool = KVMemoryPool(
        config, budget_bytes=pool_budget_bytes(config),
        page_tokens=PAGE_TOKENS,
    )
    engine = ServingEngine(
        model, pool, prefill_chunk=PREFILL_CHUNK, admission=admission,
        preempt_policy=policy if policy != "-" else "lowest_priority",
        headroom_pages=headroom,
    )
    stats = engine.run(requests)
    pool.audit()  # the engine also audits after every preemption cycle
    return stats


def admission_sweep(config, model, requests, cells):
    return {
        cell: run_cell(config, model, requests, *cell)
        for cell in cells
    }


def tokens_by_id(stats):
    return {r.request.request_id: list(r.token_ids) for r in stats.records}


def make_table(results, title):
    ms = 1e3
    table = Table(
        title=title,
        headers=["admission", "preempt policy", "headroom", "tok/s",
                 "ttft p95 (ms)", "ttft p99 (ms)", "queue p95 (ms)",
                 "preempts", "recompute toks", "occ peak"],
    )
    for (admission, policy, headroom), stats in results.items():
        table.add_row(
            admission, policy, str(headroom), f"{stats.throughput_tps:.0f}",
            f"{stats.ttft_p95 * ms:.1f}", f"{stats.ttft_p99 * ms:.1f}",
            f"{stats.queue_wait_p95 * ms:.1f}",
            str(stats.n_preemptions), str(stats.recompute_tokens),
            f"{stats.occupancy_peak:.0%}",
        )
    table.add_note(
        f"one pruning-heavy trace ({N_REQUESTS} requests at {RATE:.0f} "
        f"req/s: 85% aggressive cascade schedule, 15% dense), replayed "
        f"per cell against a fixed pool of {POOL_PAGES} pages x "
        f"{PAGE_TOKENS} tokens; bit-identical token streams asserted "
        f"across every cell (preemption costs latency, never tokens)"
    )
    return table


def check_claims(results):
    reserve = results[BASELINE_KEY]
    optimistic = results[OPTIMISTIC_KEY]
    # Claim 2 first: identical, complete token streams everywhere.
    reference = tokens_by_id(reserve)
    for key, stats in results.items():
        assert tokens_by_id(stats) == reference, (
            f"{key} changed the committed token streams"
        )
        assert all(
            r.n_generated == r.request.max_new_tokens
            for r in stats.records
        ), f"{key} lost tokens"
    # Claim 3: preemption was actually exercised, not vacuously gated.
    assert optimistic.n_preemptions > 0, (
        "optimistic cell never preempted; the sweep is not exercising "
        "the pressure path"
    )
    # Claim 1: strict throughput and TTFT-tail win at the same budget.
    assert optimistic.throughput_tps > reserve.throughput_tps, (
        f"optimistic admission lost throughput: "
        f"{optimistic.throughput_tps:.0f} vs {reserve.throughput_tps:.0f} "
        f"tok/s"
    )
    assert optimistic.ttft_p95 < reserve.ttft_p95, (
        f"optimistic admission lost the TTFT tail: "
        f"{optimistic.ttft_p95:.4f}s vs {reserve.ttft_p95:.4f}s"
    )


def test_admission_mode_sweep(preemption_world, benchmark, publish):
    config, model, corpus = preemption_world
    requests = pruning_heavy_trace(corpus)
    results = benchmark.pedantic(
        admission_sweep, args=(config, model, requests, CELLS),
        rounds=1, iterations=1,
    )
    publish(
        "preemption",
        make_table(results,
                   "admission modes at a fixed pool budget (serving)"),
    )
    check_claims(results)


@pytest.mark.smoke
def test_admission_mode_smoke(preemption_world, publish, history):
    """Tier-1 gate: optimistic admission must not lose to reserve mode.

    Runs only the two cells the acceptance bar needs and fails the
    build if optimistic admission + preemption stops strictly beating
    reservation-only admission on throughput or TTFT p95, if any token
    stream diverges, or if the pool ledger audit fails.
    """
    config, model, corpus = preemption_world
    requests = pruning_heavy_trace(corpus)
    results = admission_sweep(config, model, requests, SMOKE_CELLS)
    publish(
        "preemption_smoke",
        make_table(results, "admission modes smoke (reserve vs optimistic)"),
    )
    check_claims(results)
    from repro.insight import metric

    reserve = results[BASELINE_KEY]
    optimistic = results[OPTIMISTIC_KEY]
    history("preemption", {
        "reserve_tps": metric(reserve.throughput_tps, "tok/s", "higher"),
        "optimistic_tps": metric(optimistic.throughput_tps, "tok/s",
                                 "higher"),
        "optimistic_ttft_p95_ms": metric(optimistic.ttft_p95 * 1e3, "ms",
                                         "lower"),
    }, context={"cells": "smoke"})
