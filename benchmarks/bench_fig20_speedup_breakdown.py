"""Fig. 20: the speedup-breakdown waterfall on GPT-2 — specialized
datapath, cascade pruning (throttled by a parallelism-1 top-k), the
high-parallelism top-k engine, then static and progressive
quantization (paper: 22.1x -> x1.1 -> x1.1 -> x3 -> x1.6 -> x1.7)."""

from repro.eval import experiments as E


def test_fig20_speedup_breakdown(benchmark, publish):
    result = benchmark.pedantic(
        E.fig20_speedup_breakdown, rounds=1, iterations=1
    )
    publish("fig20_speedup_breakdown", result.table)
    cumulative = result.cumulative_speedup
    assert 6.0 < cumulative[1] < 45.0  # datapath (paper 22.1x)
    assert cumulative[4] > cumulative[3]  # fast top-k engine helps
    assert cumulative[6] > cumulative[5] > cumulative[4]  # quantization
    assert 100.0 < cumulative[-1] < 600.0  # full stack (paper 209x)
