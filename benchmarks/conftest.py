"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints it, and archives the rendered text under ``benchmarks/results/``
so the artefacts survive the run.
"""

import random
import sys
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def _seed_global_rngs():
    """Pin the global RNGs before every benchmark.

    Most experiment code threads explicit ``np.random.default_rng(seed)``
    generators, but anything that falls back to the global state (library
    helpers, ad-hoc sampling) would otherwise make repeated runs emit
    different archived tables/JSON.  Seeding here makes every benchmark
    invocation bit-reproducible.
    """
    random.seed(20210301)  # HPCA 2021
    np.random.seed(20210301)


@pytest.fixture(scope="session")
def publish():
    """Print a result table and archive it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _publish(name: str, *tables) -> None:
        text = "\n\n".join(str(t) for t in tables)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        sys.stdout.write("\n" + text + "\n")

    return _publish


@pytest.fixture(scope="session")
def history():
    """Append a bench's headline metrics to the regression history.

    Records land in ``benchmarks/results/history/<bench>.jsonl`` —
    normalized, timestamp-free, append-iff-different — where
    ``repro bench-compare`` judges the newest against the median of
    the rest.  Use :func:`repro.insight.metric` entries::

        history("serving_throughput",
                {"throughput_tps": metric(stats.throughput_tps,
                                          "tok/s", "higher")},
                context={"mode": "spatten"})
    """
    from repro.insight import append_history

    def _history(bench: str, metrics: dict, context: dict = None) -> None:
        append_history(RESULTS_DIR / "history", bench, metrics,
                       context=context)

    return _history
