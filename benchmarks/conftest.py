"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints it, and archives the rendered text under ``benchmarks/results/``
so the artefacts survive the run.
"""

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def publish():
    """Print a result table and archive it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _publish(name: str, *tables) -> None:
        text = "\n\n".join(str(t) for t in tables)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        sys.stdout.write("\n" + text + "\n")

    return _publish
