"""Table III: SpAtten-1/8 vs the A3 and MNNFast accelerators under
matched multiplier count and bandwidth (paper: 1.6x/3.0x throughput,
1.4x/3.2x energy efficiency)."""

from repro.eval import experiments as E


def test_table3_prior_art(benchmark, publish):
    result = benchmark.pedantic(E.table3_prior_art, rounds=1, iterations=1)
    publish("table3_prior_art", result.table)
    assert result.throughput_vs_a3 > 1.0
    assert result.throughput_vs_mnnfast > 1.8
    assert result.energy_vs_mnnfast > 1.8
