"""Fig. 19: design-space exploration — top-k engine parallelism sweep
(saturates once it matches the Q x K output rate; paper selects 16) and
K/V SRAM sizing (no effect beyond the 196 KB working set)."""

import pytest

from repro.eval import experiments as E


def test_fig19_design_space(benchmark, publish):
    result = benchmark.pedantic(E.fig19_design_space, rounds=1, iterations=1)
    publish("fig19_design_space", result.table)
    gflops = result.parallelism_gflops
    assert gflops[1] < gflops[4] < gflops[16]
    assert gflops[32] == pytest.approx(gflops[16], rel=0.05)
    sram = list(result.sram_gflops.values())
    assert max(sram) / min(sram) < 1.05
