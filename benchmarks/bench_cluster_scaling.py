"""Cluster scaling: replica count x routing policy at a fixed budget.

The sweep replays one *skewed* heterogeneous trace — mostly cheap
heavily-pruned short-prompt requests plus a minority of long dense
ones, every request carrying its own cascade schedule — against every
routing policy and replica count, holding the fleet's *total* KV pool
budget fixed (more replicas = smaller shards, so scaling wins have to
come from parallel compute timelines, not extra memory).

Three claims are checked, matching the subsystem's acceptance bar:

1. **fleet throughput scales**: going 1 -> 2 replicas at the same
   total budget gains >= 1.8x with pruning-aware routing;
2. **schedule-aware routing beats blind routing**: ``pruning_aware``
   strictly beats ``round_robin`` on TTFT p95 (and never loses on
   throughput) at every multi-replica point of the skewed trace —
   round-robin keeps landing dense requests on page-starved replicas
   while a cheaper replica idles;
3. **the cluster layer is free at N=1**: a single-replica cluster
   commits the same token streams with the same stats as the plain
   engine on the same trace (the event loop degenerates to
   ``ServingEngine.run``).
"""

import pytest

from repro.config import GPT2_SMALL, PruningConfig
from repro.cluster import ClusterEngine, ShardedKVPool
from repro.eval.reporting import Table
from repro.serving import KVMemoryPool, ServingEngine
from repro.workloads import (
    TrafficClass,
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    heterogeneous_request_trace,
    make_lm_corpus,
)

PAGE_TOKENS = 16
TOTAL_POOL_PAGES = 512
PREFILL_CHUNK = 32
POLICIES = ("round_robin", "least_loaded", "pruning_aware")
TRACE_SEED = 23
N_REQUESTS = 80
RATE = 2000.0

CHEAP_PRUNING = PruningConfig(
    token_keep_final=0.3, head_keep_final=0.625, value_keep=0.9
)
#: 3 of 4 requests are cheap (short prompt, aggressive cascade
#: schedule); the rest are long dense prompts.  This is the skew the
#: pruning-aware policy exists for.
SKEWED_CLASSES = [
    TrafficClass("pruned-short", weight=0.75, prompt_len=32,
                 max_new_tokens=(16, 32), pruning=CHEAP_PRUNING),
    TrafficClass("dense-long", weight=0.25, prompt_len=128,
                 max_new_tokens=(16, 32), pruning=None),
]


@pytest.fixture(scope="module")
def cluster_world():
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=6, d_model=128, n_heads=8,
        max_seq_len=256,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    corpus = make_lm_corpus(vocab, n_tokens=8192, seed=2)
    return config, model, corpus


def total_budget_bytes(config):
    per_token = 2 * config.n_heads * config.head_dim * config.bytes_per_element
    return TOTAL_POOL_PAGES * PAGE_TOKENS * per_token


def skewed_trace(config, corpus, n_requests, rate):
    return heterogeneous_request_trace(
        corpus, SKEWED_CLASSES, n_requests=n_requests, rate_per_s=rate,
        seed=TRACE_SEED,
    )


def run_cluster(config, model, requests, n_replicas, policy):
    pool = ShardedKVPool(
        config, total_budget_bytes=total_budget_bytes(config),
        n_replicas=n_replicas, page_tokens=PAGE_TOKENS,
    )
    cluster = ClusterEngine(
        model, pool, policy=policy, prefill_chunk=PREFILL_CHUNK
    )
    return cluster.run(requests)


def scaling_sweep(config, model, requests, replica_counts):
    return {
        (n, policy): run_cluster(config, model, requests, n, policy)
        for n in replica_counts
        for policy in POLICIES
    }


def make_table(results, n_requests, rate, title):
    ms = 1e3
    table = Table(
        title=title,
        headers=["replicas", "policy", "fleet tok/s", "ttft p95 (ms)",
                 "ttft p99 (ms)", "decode p95 (ms/tok)", "routed/replica",
                 "occ peak"],
    )
    for (n, policy), stats in sorted(results.items()):
        f = stats.fleet
        table.add_row(
            str(n), policy, f"{f.throughput_tps:.0f}",
            f"{f.ttft_p95 * ms:.1f}", f"{f.ttft_p99 * ms:.1f}",
            f"{f.decode_latency_p95 * ms:.2f}",
            "/".join(str(c) for c in stats.routed_counts),
            f"{f.occupancy_peak:.0%}",
        )
    table.add_note(
        f"one skewed trace ({n_requests} requests at {rate:.0f} req/s: "
        f"75% short prompts on an aggressive cascade schedule, 25% long "
        f"dense), replayed per cell; fixed total pool of "
        f"{TOTAL_POOL_PAGES} pages x {PAGE_TOKENS} tokens split across "
        f"replicas; simulated parallel replica clocks"
    )
    return table


def test_cluster_scaling(cluster_world, benchmark, publish):
    config, model, corpus = cluster_world
    requests = skewed_trace(config, corpus, N_REQUESTS, RATE)
    results = benchmark.pedantic(
        scaling_sweep, args=(config, model, requests, (1, 2, 3, 4)),
        rounds=1, iterations=1,
    )
    publish(
        "cluster_scaling",
        make_table(results, N_REQUESTS, RATE,
                   "cluster scaling, replica count x routing policy"),
    )

    # Every cell fully serves the trace: no token loss under any policy.
    for stats in results.values():
        assert all(
            r.n_generated == r.request.max_new_tokens
            for r in stats.fleet.records
        )
    # Claim 1: fleet throughput scales >= 1.8x from 1 -> 2 replicas at
    # the same total budget (pruning-aware routing).
    one = results[(1, "pruning_aware")].fleet.throughput_tps
    two = results[(2, "pruning_aware")].fleet.throughput_tps
    assert two >= 1.8 * one, f"1->2 replica scaling only {two / one:.2f}x"
    # Claim 2: schedule-aware routing strictly beats round robin on the
    # TTFT tail wherever there is a placement choice to make.
    for n in (2, 3, 4):
        aware = results[(n, "pruning_aware")].fleet
        blind = results[(n, "round_robin")].fleet
        assert aware.ttft_p95 < blind.ttft_p95, (
            f"{n} replicas: pruning_aware ttft p95 {aware.ttft_p95:.4f}s "
            f"not better than round_robin {blind.ttft_p95:.4f}s"
        )
        assert aware.throughput_tps >= blind.throughput_tps * 0.999, (
            f"{n} replicas: pruning_aware gave up throughput"
        )


def test_single_replica_cluster_matches_plain_engine(cluster_world, publish):
    """Claim 3: the cluster layer adds nothing at N=1 — same tokens,
    same simulated-clock stats as ServingEngine.run on the same trace."""
    config, model, corpus = cluster_world
    requests = skewed_trace(config, corpus, 24, 1200.0)
    plain = ServingEngine(
        model,
        KVMemoryPool(config, total_budget_bytes(config),
                     page_tokens=PAGE_TOKENS),
        prefill_chunk=PREFILL_CHUNK,
    ).run(requests)
    clustered = run_cluster(config, model, requests, 1, "round_robin")
    replica = clustered.replicas[0]
    assert (
        [r.token_ids for r in plain.records]
        == [r.token_ids for r in replica.records]
    ), "single-replica cluster changed the committed tokens"
    plain_dict = plain.to_dict()
    replica_dict = replica.to_dict()
    assert plain_dict == replica_dict, {
        k: (plain_dict[k], replica_dict[k])
        for k in plain_dict
        if plain_dict[k] != replica_dict[k]
    }
    table = Table(
        title="single-replica cluster vs plain engine (identical)",
        headers=["path", "tok/s", "ttft p95 (ms)", "decode p95 (ms/tok)"],
    )
    for label, stats in (("plain serve", plain), ("serve-cluster x1", replica)):
        table.add_row(label, f"{stats.throughput_tps:.0f}",
                      f"{stats.ttft_p95 * 1e3:.1f}",
                      f"{stats.decode_latency_p95 * 1e3:.2f}")
    publish("cluster_single_replica_identity", table)


@pytest.mark.smoke
def test_cluster_scaling_smoke(cluster_world, publish, history):
    """Tier-1 gate: scaling >= 1.8x and the pruning-aware TTFT win.

    Runs the same trace as the full sweep but only the three cells the
    acceptance bar needs: one replica as the baseline, and both
    policies at two replicas.
    """
    config, model, corpus = cluster_world
    requests = skewed_trace(config, corpus, N_REQUESTS, RATE)
    results = {
        (n, policy): run_cluster(config, model, requests, n, policy)
        for n, policy in (
            (1, "round_robin"),
            (2, "round_robin"),
            (2, "pruning_aware"),
        )
    }
    publish(
        "cluster_scaling_smoke",
        make_table(results, N_REQUESTS, RATE, "cluster scaling smoke"),
    )
    # At one replica every policy routes identically, so round_robin is
    # the baseline for the scaling claim.
    one = results[(1, "round_robin")].fleet.throughput_tps
    two = results[(2, "pruning_aware")].fleet.throughput_tps
    assert two >= 1.8 * one, f"1->2 replica scaling only {two / one:.2f}x"
    aware = results[(2, "pruning_aware")].fleet
    blind = results[(2, "round_robin")].fleet
    assert aware.ttft_p95 < blind.ttft_p95
    from repro.insight import metric

    history("cluster_scaling", {
        "scaling_1_to_2": metric(two / one, "x", "higher"),
        "aware_ttft_p95_ms": metric(aware.ttft_p95 * 1e3, "ms", "lower"),
        "blind_ttft_p95_ms": metric(blind.ttft_p95 * 1e3, "ms", "lower"),
    }, context={"n_requests": N_REQUESTS, "rate_per_s": RATE})
    for stats in results.values():
        assert all(
            r.n_generated == r.request.max_new_tokens
            for r in stats.fleet.records
        )
