"""Fig. 14: per-benchmark speedup and energy efficiency of SpAtten over
TITAN Xp / Xeon / Jetson Nano / Raspberry Pi on all 30 benchmarks
(paper geomeans: 162x/347x/1095x/5071x speedup, 1193x/4059x/406x/1910x
energy savings)."""

from repro.eval import experiments as E


def test_fig14_speedup_energy(benchmark, publish):
    result = benchmark.pedantic(E.fig14_speedup_energy, rounds=1, iterations=1)
    publish("fig14_speedup_energy", result.table)
    for platform, (paper_speedup, paper_energy) in E.PAPER_FIG14_GEOMEANS.items():
        measured = result.geomean_speedup[platform]
        assert paper_speedup / 2.5 < measured < paper_speedup * 2.5, platform
        measured_e = result.geomean_energy[platform]
        assert paper_energy / 3.0 < measured_e < paper_energy * 3.0, platform
