"""Fig. 16/17: hardware-aware Transformer co-design for SpAtten-e2e
(paper: 1.9x faster and 2.8x smaller than vanilla Transformer-Big at
matched quality; the co-designed model trades FC FLOPs for attention
FLOPs)."""

from repro.eval import experiments as E


def test_fig16_fig17_hat_codesign(benchmark, publish):
    result = benchmark.pedantic(E.fig16_hat_codesign, rounds=1, iterations=1)
    publish("fig16_hat_codesign", result.table, result.fig17_table)
    assert result.speedup_vs_big > 1.5
    assert result.size_reduction_vs_big > 1.8
    near_base = min(result.codesigned, key=lambda p: abs(p.bleu - result.base.bleu))
    assert near_base.fc_flops < result.base.fc_flops
