"""Decode-step wall clock: packed backend + preallocated KV vs PR-2.

Three variants of the same batched decode step, all committing
bit-identical logits (asserted while timing):

* ``pr2``     — the PR-2 serving hot path: looped per-sequence
  ``run_layer`` calls over concatenate-grown KV storage
  (``DenseExecutor(kv_preallocate=False)``);
* ``looped``  — the looped oracle over this PR's preallocated,
  page-aligned KV buffers (isolates the storage win);
* ``packed``  — :class:`repro.nn.batched_attention.PackedDecodeBackend`:
  fused batch-level Q/K/V + output projections, central dense attention
  core over zero-copy cache views (isolates the batching win on top).

The sweep covers B ∈ {4, 16, 64} at the serving benchmark's prompt
scale and a long-context row where the PR-2 path's O(L) concatenate per
appended token — O(L²) copy traffic over a generation — dominates.  A
second section times the serving engine end to end under both
backends.

Honest-ceiling note (recorded in the published table): the issue's
target of a ≥ 3× step speedup at batch 16 is not reachable on this
substrate under the bit-identity constraint.  OpenBLAS reductions are
not padding-invariant (zero-padding the k-axis or the score columns
changes last-ulp results), so the packed core must keep exact-length
per-sequence matmuls and softmax denominators; what remains removable
is interpreter overhead and the concat copy traffic.  The concat adds
at most ~2× the mandatory KV read traffic of attention itself, and the
(shared) FFN/gelu tax is identical in every variant, which caps the
achievable same-math ratio near ~2×.  The assertions below gate the
achieved wins (and the CI smoke variant fails the build on any
looped-vs-packed regression, speedup < 1×).
"""

import copy
import time

import numpy as np
import pytest

from repro.config import GPT2_SMALL
from repro.eval.reporting import Table
from repro.nn import PackedDecodeBackend
from repro.nn.transformer import DenseExecutor
from repro.serving import KVMemoryPool, ServingEngine
from repro.workloads import (
    accuracy_scale_config,
    build_task_model,
    build_vocabulary,
    make_lm_corpus,
    synthetic_request_trace,
)

PAGE_TOKENS = 16
VARIANTS = ("pr2", "looped", "packed")


@pytest.fixture(scope="module")
def decode_world():
    vocab = build_vocabulary(size=512, n_classes=4, seed=0)
    config = accuracy_scale_config(
        GPT2_SMALL, len(vocab), n_layers=6, d_model=128, n_heads=8,
        max_seq_len=2048,
    )
    model, _ = build_task_model(config, vocab, "lm", seed=0)
    return config, model, PackedDecodeBackend(model)


def build_executors(model, batch, prompt_len, variant):
    """Prefill one prototype executor and clone it across the batch."""
    rng = np.random.default_rng(1)
    prompt = rng.integers(0, model.config.vocab_size, size=prompt_len)
    prototype = DenseExecutor(
        kv_page_tokens=PAGE_TOKENS, kv_preallocate=(variant != "pr2")
    )
    state = model.prefill_begin(prompt.tolist(), prototype)
    while not state.done:
        model.prefill_chunk(state, 256)
    return [copy.deepcopy(prototype) for _ in range(batch)]


def time_decode_steps(model, backend, batch, prompt_len, variant,
                      steps=6, trials=3):
    """Best-of-trials per-step wall clock; returns (seconds, logits).

    Best-of is the noise-robust estimator for a microbenchmark on a
    shared runner: scheduling hiccups only ever inflate a trial, so the
    minimum tracks the code's true cost — a genuine regression slows
    every trial and still moves it.
    """
    executors = build_executors(model, batch, prompt_len, variant)
    use = backend if variant == "packed" else None
    logits = model.decode_step_batch(
        [3] * batch, [prompt_len] * batch, executors, backend=use
    )
    position = prompt_len + 1
    samples = []
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(steps):
            logits = model.decode_step_batch(
                [int(np.argmax(row)) for row in logits],
                [position] * batch, executors, backend=use,
            )
            position += 1
        samples.append((time.perf_counter() - start) / steps)
    return float(np.min(samples)), logits


def decode_sweep(model, backend, cases, steps=6, trials=3):
    rows = []
    for batch, prompt_len in cases:
        per_variant = {}
        final_logits = {}
        for variant in VARIANTS:
            per_variant[variant], final_logits[variant] = time_decode_steps(
                model, backend, batch, prompt_len, variant,
                steps=steps, trials=trials,
            )
        # Every variant must have sampled identical token streams.
        assert np.array_equal(final_logits["pr2"], final_logits["looped"])
        assert np.array_equal(final_logits["looped"], final_logits["packed"])
        rows.append((batch, prompt_len, per_variant))
    return rows


def speedup_table(rows, title):
    table = Table(
        title=title,
        headers=["batch", "context", "PR-2 (ms)", "looped (ms)",
                 "packed (ms)", "packed vs PR-2", "packed vs looped"],
    )
    for batch, prompt_len, r in rows:
        table.add_row(
            str(batch), str(prompt_len),
            f"{r['pr2'] * 1e3:.2f}", f"{r['looped'] * 1e3:.2f}",
            f"{r['packed'] * 1e3:.2f}",
            f"{r['pr2'] / r['packed']:.2f}x",
            f"{r['looped'] / r['packed']:.2f}x",
        )
    table.add_note(
        "identical logits asserted across all variants every run; "
        "best-of-3-trials per-step wall clock"
    )
    table.add_note(
        "PR-2 = looped run_layer over concatenate-grown KV (the prior "
        "hot path); looped = same loop over preallocated buffers; "
        "packed = fused batched projections + central attention core"
    )
    table.add_note(
        "the issue's 3x-at-batch-16 target is unreachable bit-identically "
        "on this BLAS: padding-variant reductions force exact-length "
        "per-sequence matmuls, and concat adds at most ~2x the mandatory "
        "KV read traffic (see module docstring)"
    )
    return table


def test_decode_step_speedup(decode_world, benchmark, publish):
    config, model, backend = decode_world
    cases = [(4, 192), (16, 192), (64, 192), (16, 1024)]
    rows = benchmark.pedantic(
        decode_sweep, args=(model, backend, cases), rounds=1, iterations=1
    )
    table = speedup_table(
        rows, "decode step: packed backend + preallocated KV vs PR-2"
    )

    # Engine end to end: the PR-2 configuration vs this PR's default.
    engine_rows = engine_wall_clock(config, model)
    engine_table = Table(
        title="serving engine wall clock (chunked prefill + decode)",
        headers=["configuration", "wall clock (s)", "speedup"],
    )
    pr2_s, packed_s = engine_rows
    engine_table.add_row("PR-2 (looped, concat KV)", f"{pr2_s:.2f}", "1.00x")
    engine_table.add_row(
        "this PR (packed, preallocated KV)", f"{packed_s:.2f}",
        f"{pr2_s / packed_s:.2f}x",
    )
    engine_table.add_note(
        "identical token streams asserted; the engine clock includes the "
        "(backend-independent) FFN/gelu tax, which bounds this ratio"
    )
    publish("decode_step", table, engine_table)

    for batch, prompt_len, r in rows:
        if batch >= 16:
            # Regression gate on the batches with real headroom; the
            # B=4 row is informational (its measured margin is ~3%,
            # within scheduler noise on a shared runner).
            assert r["looped"] / r["packed"] >= 1.0, (
                f"packed slower than looped at B={batch}, L={prompt_len}"
            )
        assert r["pr2"] / r["packed"] >= 1.1, (
            f"packed lost its win over the PR-2 hot path at B={batch}"
        )
    by_case = {(b, p): r for b, p, r in rows}
    # The batch-16 wins this PR actually achieves (measured 1.35x and
    # 2.1x), gated with slack for slower shared runners.
    assert by_case[(16, 192)]["pr2"] / by_case[(16, 192)]["packed"] >= 1.2
    assert by_case[(16, 1024)]["pr2"] / by_case[(16, 1024)]["packed"] >= 1.4
    # Engine must not regress, and tokens matched inside engine_wall_clock.
    assert packed_s <= pr2_s * 1.10


def engine_wall_clock(config, model):
    corpus = make_lm_corpus(
        build_vocabulary(size=512, n_classes=4, seed=0), n_tokens=8192, seed=2
    )
    requests = synthetic_request_trace(
        corpus, n_requests=8, rate_per_s=1000.0, prompt_len=192,
        max_new_tokens=(12, 20), seed=11,
    )

    def build(backend, preallocate):
        per_token = (
            2 * config.n_heads * config.head_dim * config.bytes_per_element
        )
        pool = KVMemoryPool(
            config, budget_bytes=1024 * PAGE_TOKENS * per_token,
            page_tokens=PAGE_TOKENS,
        )
        factory = None
        if not preallocate:
            factory = lambda: DenseExecutor(kv_preallocate=False)
        return ServingEngine(
            model, pool, prefill_chunk=32, attention_backend=backend,
            executor_factory=factory,
        )

    start = time.perf_counter()
    pr2_stats = build("looped", preallocate=False).run(requests)
    pr2_s = time.perf_counter() - start
    start = time.perf_counter()
    packed_stats = build("packed", preallocate=True).run(requests)
    packed_s = time.perf_counter() - start
    assert (
        [r.token_ids for r in pr2_stats.records]
        == [r.token_ids for r in packed_stats.records]
    ), "packed engine changed the served token streams"
    return pr2_s, packed_s


@pytest.mark.smoke
def test_decode_step_smoke(decode_world, publish, history):
    """Batch-16 regression gate for tier-1: packed must not lose to
    looped (speedup < 1x fails the build) and must stay bit-identical."""
    from repro.insight import metric

    _, model, backend = decode_world
    rows = decode_sweep(model, backend, [(16, 192)], steps=4, trials=4)
    table = speedup_table(rows, "decode step smoke (batch 16)")
    publish("decode_step_smoke", table)
    (_, _, r), = rows
    # Wall-clock ratios wobble with machine load, so these carry a much
    # wider tolerance floor than the simulated-clock metrics.
    history("decode_step", {
        "looped_over_packed": metric(r["looped"] / r["packed"], "x",
                                     "higher", rel_tol=0.6),
        "pr2_over_packed": metric(r["pr2"] / r["packed"], "x",
                                  "higher", rel_tol=0.5),
    }, context={"batch": 16, "seq_len": 192})
    assert r["looped"] / r["packed"] >= 1.0, "looped-vs-packed regression"
    assert r["pr2"] / r["packed"] >= 1.1, "lost the win over the PR-2 path"
